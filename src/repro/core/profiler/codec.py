"""Versioned columnar binary codec for profile records.

The JSONL journal spends most of its time re-encoding records as text:
every append builds the nested dict view, canonicalizes it *twice* (once
for the checksum, once for the entry), and every recover parses and
re-canonicalizes it all again. This module replaces that hot path with a
fixed-width columnar encoding in the spirit of tf-Darshan's compact
binary trace records: one *block* per :class:`ProfileRecord`, made of a
fixed block header plus a columnar payload, integrity-checked by a
CRC-32 over the payload bytes.

On-disk layout of a binary record file (journal or record store)::

    +----------------------------+
    | file magic  "TPUPREC\\x01"  |  8 bytes (version in the last byte)
    +----------------------------+
    | block 0                    |
    | block 1                    |
    | ...                        |
    +----------------------------+

    block := header | payload
    header (36 bytes, little-endian):
        u32  seq             journal sequence number
        i64  index           record index (duplicated from the payload
                             so refusals stay attributable even when
                             the payload is unreadable)
        f64  window_start_us
        f64  window_end_us
        u32  payload_len
        u32  crc32(payload)

    payload (columnar, little-endian):
        i64  index | f64 window_start_us | f64 window_end_us | u8 flags
        u32  n_names, then n_names x (u16 len | utf-8 bytes)  string table
        u32  n_steps
        i64[n_steps]  step numbers           (insertion order)
        u8 [n_steps]  step kinds             (0 = none, else 1 + kind)
        f64[n_steps]  start_us
        f64[n_steps]  end_us
        f64[n_steps]  tpu_idle_us
        f64[n_steps]  mxu_flops
        u32[n_steps]  operators per step
        u32  n_ops
        u32[n_ops]  name index               (insertion order per step)
        u8 [n_ops]  device
        i64[n_ops]  count
        f64[n_ops]  total_duration_us

Steps and operators are laid out in **insertion order**, never sorted:
the JSON checksum (:func:`~repro.core.profiler.serialize.payload_checksum`)
is computed over lists built from dict iteration order, so preserving
that order is what makes a binary round trip checksum-stable against
the JSON path.

Wire frames (the serve ingest hand-off) are a single block prefixed
with a 4-byte frame magic, so fault injection
(:meth:`repro.faults.RecordTransit.apply_frame`) can flip payload bits
or cut the frame short and the CRC/framing check catches it at decode.

Versioning: the device and step-kind code tables are frozen per codec
version — adding an enum member requires bumping ``CODEC_VERSION`` (and
the file magic's version byte), and readers reject files whose version
byte they do not understand. See ``docs/performance.md`` for the
migration notes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.errors import CodecError
from repro.runtime.events import DeviceKind, StepKind

#: Bumped whenever the block/payload layout or a code table changes.
CODEC_VERSION = 1

#: File magic of a binary record file; the last byte is the codec version.
MAGIC = b"TPUPREC" + bytes([CODEC_VERSION])

#: Every binary record file starts with these bytes regardless of version.
MAGIC_PREFIX = b"TPUPREC"

#: Magic of one wire frame (serve ingest hand-off).
FRAME_MAGIC = b"TPFR"

_BLOCK_HEADER = struct.Struct("<IqddII")  # seq, index, window, payload_len, crc
_PAYLOAD_HEADER = struct.Struct("<qddB")  # index, window_start, window_end, flags
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

BLOCK_HEADER_BYTES = _BLOCK_HEADER.size
FRAME_HEADER_BYTES = len(FRAME_MAGIC) + BLOCK_HEADER_BYTES

_FLAG_TRUNCATED = 1
_FLAG_FINAL = 2

# Code tables are version-gated: the tuple order of the enums at codec
# version 1 is frozen here. Extending either enum must bump CODEC_VERSION.
_DEVICES = tuple(DeviceKind)
_DEVICE_CODE = {device: code for code, device in enumerate(_DEVICES)}
_DEVICE_PAIRS = tuple((device, device.value) for device in _DEVICES)
_KINDS = tuple(StepKind)
_KIND_CODE = {kind: code + 1 for code, kind in enumerate(_KINDS)}
_KIND_BY_CODE = (None,) + _KINDS

#: Upper bound on one block's payload; a larger length field means the
#: framing itself is broken (torn or overwritten), not a huge record.
MAX_PAYLOAD_BYTES = 1 << 30


def encode_payload(record: ProfileRecord) -> bytes:
    """The columnar payload bytes of one record (no header, no CRC)."""
    flags = (_FLAG_TRUNCATED if record.truncated else 0) | (
        _FLAG_FINAL if record.final else 0
    )
    steps = list(record.steps.values())
    try:
        parts = [
            _PAYLOAD_HEADER.pack(
                record.index, record.window_start_us, record.window_end_us, flags
            )
        ]
        # String table in first-appearance order (dedups operator names
        # across steps; a name repeated every step is stored once).
        names: dict[str, int] = {}
        for step in steps:
            for stats in step.operators.values():
                if stats.name not in names:
                    names[stats.name] = len(names)
        parts.append(_U32.pack(len(names)))
        for name in names:
            raw = name.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise CodecError(
                    f"operator name of {len(raw)} bytes overflows the string table"
                )
            parts.append(_U16.pack(len(raw)))
            parts.append(raw)
        n = len(steps)
        parts.append(_U32.pack(n))
        if n:
            parts.append(struct.pack(f"<{n}q", *(step.step for step in steps)))
            parts.append(
                struct.pack(
                    f"<{n}B",
                    *(0 if s.kind is None else _KIND_CODE[s.kind] for s in steps),
                )
            )
            for column in ("start_us", "end_us", "tpu_idle_us", "mxu_flops"):
                parts.append(
                    struct.pack(f"<{n}d", *(getattr(s, column) for s in steps))
                )
            parts.append(struct.pack(f"<{n}I", *(len(s.operators) for s in steps)))
            ops = [stats for step in steps for stats in step.operators.values()]
            m = len(ops)
            parts.append(_U32.pack(m))
            if m:
                parts.append(struct.pack(f"<{m}I", *(names[s.name] for s in ops)))
                parts.append(struct.pack(f"<{m}B", *(_DEVICE_CODE[s.device] for s in ops)))
                parts.append(struct.pack(f"<{m}q", *(s.count for s in ops)))
                parts.append(
                    struct.pack(f"<{m}d", *(s.total_duration_us for s in ops))
                )
    except struct.error as error:
        raise CodecError(f"record {record.index} does not fit the codec: {error}")
    return b"".join(parts)


def decode_payload(buffer) -> ProfileRecord:
    """Rebuild a record from its payload bytes; raises :class:`CodecError`."""
    view = memoryview(buffer)
    size = len(view)
    try:
        index, window_start, window_end, flags = _PAYLOAD_HEADER.unpack_from(view, 0)
        offset = _PAYLOAD_HEADER.size
        (n_names,) = _U32.unpack_from(view, offset)
        offset += 4
        names: list[str] = []
        for _ in range(n_names):
            (length,) = _U16.unpack_from(view, offset)
            offset += 2
            if offset + length > size:
                raise CodecError("string table overruns the payload")
            names.append(bytes(view[offset : offset + length]).decode("utf-8"))
            offset += length
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        record = ProfileRecord(
            index=index,
            window_start_us=window_start,
            window_end_us=window_end,
            truncated=bool(flags & _FLAG_TRUNCATED),
            final=bool(flags & _FLAG_FINAL),
        )
        if n:
            if n * 8 > size:
                raise CodecError("step columns overrun the payload")
            numbers = struct.unpack_from(f"<{n}q", view, offset)
            offset += 8 * n
            kind_codes = struct.unpack_from(f"<{n}B", view, offset)
            offset += n
            columns = []
            for _ in range(4):
                columns.append(struct.unpack_from(f"<{n}d", view, offset))
                offset += 8 * n
            starts, ends, idles, flops = columns
            per_step = struct.unpack_from(f"<{n}I", view, offset)
            offset += 4 * n
            (m,) = _U32.unpack_from(view, offset)
            offset += 4
            if m != sum(per_step):
                raise CodecError(
                    "operator columns disagree with the per-step counts"
                )
            if m * 8 > size:
                raise CodecError("operator columns overrun the payload")
            name_indices = struct.unpack_from(f"<{m}I", view, offset)
            offset += 4 * m
            device_codes = struct.unpack_from(f"<{m}B", view, offset)
            offset += m
            counts = struct.unpack_from(f"<{m}q", view, offset)
            offset += 8 * m
            durations = struct.unpack_from(f"<{m}d", view, offset)
            offset += 8 * m
            # Validity checks are hoisted out of the per-operator loop:
            # one max() over each code column replaces m branch pairs.
            if max(kind_codes) > len(_KINDS):
                raise CodecError(f"unknown step-kind code {max(kind_codes)}")
            if m:
                if max(name_indices) >= len(names):
                    raise CodecError("operator name index out of range")
                if max(device_codes) >= len(_DEVICES):
                    raise CodecError(f"unknown device code {max(device_codes)}")
            operator_columns = zip(name_indices, device_codes, counts, durations)
            record_steps = record.steps
            for number, code, start, end, idle, mxu, op_count in zip(
                numbers, kind_codes, starts, ends, idles, flops, per_step
            ):
                step = StepStats(
                    step=number,
                    kind=_KIND_BY_CODE[code],
                    start_us=start,
                    end_us=end,
                    tpu_idle_us=idle,
                    mxu_flops=mxu,
                )
                operators = step.operators
                for _ in range(op_count):
                    name_index, device_code, count, duration = next(operator_columns)
                    name = names[name_index]
                    device, device_value = _DEVICE_PAIRS[device_code]
                    operators[(name, device_value)] = OperatorStats(
                        name=name,
                        device=device,
                        count=count,
                        total_duration_us=duration,
                    )
                record_steps[number] = step
        if offset != size:
            raise CodecError("trailing bytes after the record payload")
    except struct.error as error:
        raise CodecError(f"malformed record payload: {error}") from None
    return record


def encode_block(seq: int, record: ProfileRecord) -> bytes:
    """One journal block: header (seq, index, window, len, CRC) + payload."""
    payload = encode_payload(record)
    try:
        header = _BLOCK_HEADER.pack(
            seq,
            record.index,
            record.window_start_us,
            record.window_end_us,
            len(payload),
            zlib.crc32(payload),
        )
    except struct.error as error:
        raise CodecError(f"record {record.index} does not fit a block header: {error}")
    return header + payload


@dataclass(frozen=True)
class BlockRead:
    """Outcome of parsing one block at a given offset.

    ``status`` is ``"ok"`` (record decoded, CRC verified), ``"corrupt"``
    (framing intact but the CRC or payload decode failed — the reader
    can skip to ``next_offset``), or ``"torn"`` (the framing itself is
    cut or implausible — nothing after this offset is readable).
    """

    status: str
    seq: int = -1
    record: ProfileRecord | None = None
    next_offset: int = -1
    error: str = ""


def read_block(view, offset: int) -> BlockRead:
    """Parse the block starting at ``offset`` of a bytes-like ``view``."""
    size = len(view)
    if offset + BLOCK_HEADER_BYTES > size:
        return BlockRead(status="torn", error="truncated block header")
    seq, _index, _ws, _we, length, crc = _BLOCK_HEADER.unpack_from(view, offset)
    if length > MAX_PAYLOAD_BYTES:
        return BlockRead(
            status="torn", seq=seq, error="implausible payload length (broken framing)"
        )
    start = offset + BLOCK_HEADER_BYTES
    end = start + length
    if end > size:
        return BlockRead(status="torn", seq=seq, error="payload cut mid-block")
    payload = view[start:end]
    if zlib.crc32(payload) != crc:
        return BlockRead(
            status="corrupt",
            seq=seq,
            next_offset=end,
            error=f"CRC-32 mismatch on block {seq}",
        )
    try:
        record = decode_payload(payload)
    except CodecError as error:
        return BlockRead(status="corrupt", seq=seq, next_offset=end, error=str(error))
    return BlockRead(status="ok", seq=seq, record=record, next_offset=end)


def encode_frame(seq: int, record: ProfileRecord) -> bytes:
    """One serve-ingest wire frame: frame magic + block."""
    return FRAME_MAGIC + encode_block(seq, record)


def decode_frame(frame) -> ProfileRecord:
    """Decode and CRC-verify one wire frame; raises :class:`CodecError`."""
    view = memoryview(frame)
    if len(view) < len(FRAME_MAGIC) or bytes(view[: len(FRAME_MAGIC)]) != FRAME_MAGIC:
        raise CodecError("wire frame lacks the frame magic")
    read = read_block(view, len(FRAME_MAGIC))
    if read.status != "ok":
        raise CodecError(read.error or "undecodable wire frame")
    if read.next_offset != len(view):
        raise CodecError("trailing bytes after the wire frame")
    return read.record


def frame_stub(frame) -> ProfileRecord:
    """Best-effort skeleton of a refused frame's record.

    A corrupted frame cannot be decoded, but its block header (sequence,
    record index, window) usually survives bit flips confined to the
    payload — enough to quarantine an attributable placeholder instead
    of losing the refusal entirely.
    """
    view = memoryview(frame)
    offset = 0
    if len(view) >= len(FRAME_MAGIC) and bytes(view[: len(FRAME_MAGIC)]) == FRAME_MAGIC:
        offset = len(FRAME_MAGIC)
    try:
        _seq, index, window_start, window_end, _length, _crc = _BLOCK_HEADER.unpack_from(
            view, offset
        )
    except struct.error:
        return ProfileRecord(index=-1, window_start_us=0.0, window_end_us=0.0)
    return ProfileRecord(
        index=index, window_start_us=window_start, window_end_us=window_end
    )


__all__ = [
    "BLOCK_HEADER_BYTES",
    "BlockRead",
    "CODEC_VERSION",
    "FRAME_HEADER_BYTES",
    "FRAME_MAGIC",
    "MAGIC",
    "MAGIC_PREFIX",
    "MAX_PAYLOAD_BYTES",
    "decode_frame",
    "decode_payload",
    "encode_block",
    "encode_frame",
    "encode_payload",
    "frame_stub",
    "read_block",
]
