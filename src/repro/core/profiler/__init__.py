"""TPUPoint-Profiler: periodic statistical profiling of TPU training."""

from repro.core.profiler.codec import (
    CODEC_VERSION,
    decode_frame,
    encode_frame,
    frame_stub,
)
from repro.core.profiler.journal import (
    DEFAULT_JOURNAL_FORMAT,
    JOURNAL_FORMATS,
    JournalRecovery,
    RecordJournal,
    detect_journal_format,
    recover_journal,
)
from repro.core.profiler.options import ProfilerOptions
from repro.core.profiler.profiler import ProfilerStats, TPUPointProfiler
from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.core.profiler.recorder import RecordingThread
from repro.core.profiler.streaming import StepStream
from repro.core.profiler.serialize import (
    load_records,
    record_from_dict,
    record_to_dict,
    save_records,
)

__all__ = [
    "CODEC_VERSION",
    "DEFAULT_JOURNAL_FORMAT",
    "JOURNAL_FORMATS",
    "JournalRecovery",
    "OperatorStats",
    "ProfileRecord",
    "ProfilerOptions",
    "ProfilerStats",
    "RecordJournal",
    "RecordingThread",
    "StepStats",
    "StepStream",
    "TPUPointProfiler",
    "decode_frame",
    "detect_journal_format",
    "encode_frame",
    "frame_stub",
    "load_records",
    "record_from_dict",
    "record_to_dict",
    "recover_journal",
    "save_records",
]
