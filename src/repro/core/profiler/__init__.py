"""TPUPoint-Profiler: periodic statistical profiling of TPU training."""

from repro.core.profiler.options import ProfilerOptions
from repro.core.profiler.profiler import ProfilerStats, TPUPointProfiler
from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.core.profiler.recorder import RecordingThread
from repro.core.profiler.streaming import StepStream
from repro.core.profiler.serialize import (
    load_records,
    record_from_dict,
    record_to_dict,
    save_records,
)

__all__ = [
    "OperatorStats",
    "ProfileRecord",
    "ProfilerOptions",
    "ProfilerStats",
    "RecordingThread",
    "StepStats",
    "StepStream",
    "TPUPointProfiler",
    "load_records",
    "record_from_dict",
    "record_to_dict",
    "save_records",
]
