"""The recording thread.

When the analyzer flag is set, TPUPoint-Profiler spawns a recording
thread that stores each statistical record in Cloud Storage while the
profiling thread keeps requesting the next profile (Section III-A). In
the simulation the thread is an object with the same contract: it
receives records, persists them (bucket writes cost simulated time,
charged asynchronously), and hands the collected list back at the end.
Without the analyzer flag, records stay buffered in host memory only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.profiler.record import ProfileRecord
from repro.errors import ProfilerError
from repro.storage.bucket import Bucket
from repro.storage.objects import StorageObject


@dataclass
class RecordingThread:
    """Persists profile records into a bucket as they arrive."""

    bucket: Bucket | None = None
    prefix: str = "tpupoint/profiles/"
    records: list[ProfileRecord] = field(default_factory=list)
    bytes_written: float = 0.0
    _closed: bool = False

    def submit(self, record: ProfileRecord) -> None:
        """Accept one record from the profiling thread."""
        if self._closed:
            raise ProfilerError("recording thread already stopped")
        self.records.append(record)
        if self.bucket is not None:
            size = record.estimated_bytes()
            self.bucket.put(
                StorageObject(f"{self.prefix}record-{record.index:06d}.pb", size)
            )
            self.bytes_written += size

    def close(self) -> list[ProfileRecord]:
        """Stop the thread and return everything recorded."""
        self._closed = True
        return list(self.records)

    def manifest(self) -> dict:
        """A JSON-serializable summary of what was recorded."""
        return {
            "num_records": len(self.records),
            "bytes_written": self.bytes_written,
            "records": [
                {
                    "index": record.index,
                    "window_start_us": record.window_start_us,
                    "window_end_us": record.window_end_us,
                    "num_steps": record.num_steps,
                    "truncated": record.truncated,
                    "final": record.final,
                }
                for record in self.records
            ],
        }

    def dump_manifest(self) -> str:
        """The manifest as a JSON string."""
        return json.dumps(self.manifest(), indent=2)
