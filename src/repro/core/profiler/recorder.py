"""The recording thread.

When the analyzer flag is set, TPUPoint-Profiler spawns a recording
thread that stores each statistical record in Cloud Storage while the
profiling thread keeps requesting the next profile (Section III-A). In
the simulation the thread is an object with the same contract: it
receives records, persists them (bucket writes cost simulated time,
charged asynchronously), and hands the collected list back at the end.
Without the analyzer flag, records stay buffered in host memory only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.profiler.journal import RecordJournal
from repro.core.profiler.record import ProfileRecord
from repro.errors import ProfilerError
from repro.storage.bucket import Bucket
from repro.storage.objects import StorageObject


@dataclass
class RecordingThread:
    """Persists profile records into a bucket as they arrive.

    When ``journal`` is attached, every record is also durably appended
    to a checksummed on-disk journal *before* the in-memory buffer grows
    — after a crash, the journal holds everything the thread ever
    acknowledged (minus at most one torn tail line).
    """

    bucket: Bucket | None = None
    prefix: str = "tpupoint/profiles/"
    records: list[ProfileRecord] = field(default_factory=list)
    journal: RecordJournal | None = None
    bytes_written: float = 0.0
    crashed: bool = False
    _closed: bool = False

    def submit(self, record: ProfileRecord) -> None:
        """Accept one record from the profiling thread."""
        if self._closed:
            raise ProfilerError("recording thread already stopped")
        if self.journal is not None and self.journal.alive:
            self.journal.append(record)
        self.records.append(record)
        if self.bucket is not None:
            size = record.estimated_bytes()
            self.bucket.put(
                StorageObject(f"{self.prefix}record-{record.index:06d}.pb", size)
            )
            self.bytes_written += size

    def crash(self, record: ProfileRecord | None = None) -> None:
        """Kill the journaling half of the thread mid-append.

        Models the recorder dying between ``write`` and the final
        newline: the journal is left with a torn tail and stops
        accepting appends. The in-memory buffer keeps filling so the
        surrounding run still completes — recovery happens offline via
        ``tpupoint recover``.
        """
        self.crashed = True
        if self.journal is not None:
            self.journal.tear(record)

    def close(self) -> list[ProfileRecord]:
        """Stop the thread and return everything recorded."""
        self._closed = True
        if self.journal is not None:
            self.journal.close()
        return list(self.records)

    def manifest(self) -> dict:
        """A JSON-serializable summary of what was recorded."""
        return {
            "num_records": len(self.records),
            "bytes_written": self.bytes_written,
            "records": [
                {
                    "index": record.index,
                    "window_start_us": record.window_start_us,
                    "window_end_us": record.window_end_us,
                    "num_steps": record.num_steps,
                    "truncated": record.truncated,
                    "final": record.final,
                }
                for record in self.records
            ],
        }

    def dump_manifest(self) -> str:
        """The manifest as a JSON string."""
        return json.dumps(self.manifest(), indent=2)
