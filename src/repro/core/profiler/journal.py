"""Crash-safe record journaling.

The recording thread persists each :class:`ProfileRecord` to an
append-only JSONL journal as it arrives: one line per record, each line
carrying a sequence number and a CRC-32 over the record's canonical
encoding, flushed before the next record is accepted. If the recorder
(or the whole process) dies mid-write, the journal is left with at most
one torn line at the tail; :func:`recover_journal` tolerates exactly
that — it verifies every line's checksum, skips and counts corrupt
entries, stops at a torn tail, and returns everything that survived so
``tpupoint recover`` can resume offline analysis from a partial run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.profiler.record import ProfileRecord
from repro.core.profiler.serialize import (
    SCHEMA_VERSION,
    payload_checksum,
    record_from_dict,
    record_to_dict,
)
from repro.errors import JournalError


def encode_entry(seq: int, record: ProfileRecord) -> str:
    """One journal line (no trailing newline) for ``record``."""
    payload = record_to_dict(record)
    entry = {"seq": seq, "crc": payload_checksum(payload), "record": payload}
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def decode_entry(line: str) -> tuple[int, ProfileRecord]:
    """Parse and verify one journal line; raises :class:`JournalError`."""
    try:
        entry = json.loads(line)
    except json.JSONDecodeError as error:
        raise JournalError(f"unparseable journal line: {error}") from None
    if not isinstance(entry, dict) or "record" not in entry:
        raise JournalError("journal line is not a record entry")
    payload = entry["record"]
    if payload_checksum(payload) != entry.get("crc"):
        raise JournalError(f"checksum mismatch on journal entry {entry.get('seq')}")
    try:
        record = record_from_dict(payload)
    except Exception as error:
        raise JournalError(f"journal entry {entry.get('seq')} is malformed: {error}")
    try:
        seq = int(entry["seq"])
    except (KeyError, TypeError, ValueError):
        raise JournalError("journal entry is missing a sequence number") from None
    return seq, record


class RecordJournal:
    """Append-only checksummed JSONL journal for one profiling run."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._seq = 0
        self._dead = False
        self.entries_written = 0
        self.bytes_written = 0

    @property
    def alive(self) -> bool:
        """Whether the journal still accepts appends."""
        return not self._dead

    def append(self, record: ProfileRecord) -> None:
        """Durably append one record (write + flush before returning)."""
        if self._dead:
            raise JournalError(f"journal {self.path} is closed")
        line = encode_entry(self._seq, record)
        self._handle.write(line + "\n")
        self._handle.flush()
        self._seq += 1
        self.entries_written += 1
        self.bytes_written += len(line) + 1

    def tear(self, record: ProfileRecord | None = None) -> None:
        """Simulate a crash mid-append: leave a torn line, go dead.

        Writes a prefix of what would have been the next entry — the
        exact on-disk state a process death between ``write`` and the
        final newline leaves behind — then stops accepting appends.
        """
        if self._dead:
            return
        if record is not None:
            line = encode_entry(self._seq, record)
        else:
            line = '{"crc": 0, "record": {"index": %d, "steps"' % self._seq
        self._handle.write(line[: max(8, len(line) // 2)])
        self.close()

    def close(self) -> None:
        """Flush and close the journal file."""
        if not self._dead:
            self._handle.flush()
            self._handle.close()
            self._dead = True


@dataclass(frozen=True)
class JournalRecovery:
    """What :func:`recover_journal` salvaged from a journal file."""

    records: tuple[ProfileRecord, ...]
    entries_total: int
    entries_recovered: int
    corrupt_entries: int
    torn_tail: bool

    @property
    def lossless(self) -> bool:
        """Whether the journal was recovered without losing anything."""
        return self.corrupt_entries == 0 and not self.torn_tail

    def format(self) -> list[str]:
        return [
            f"journal entries : {self.entries_total} "
            f"({self.entries_recovered} recovered, {self.corrupt_entries} corrupt)",
            f"torn tail       : {'yes' if self.torn_tail else 'no'}",
            f"records         : {len(self.records)}",
        ]


def recover_journal(path: str | Path, strict: bool = False) -> JournalRecovery:
    """Load every intact record from a (possibly torn) journal.

    A failure on the *last* line is a torn tail — the expected signature
    of a crash mid-append — and is always tolerated. Failures on earlier
    lines are genuine corruption: skipped and counted by default, raised
    as :class:`JournalError` under ``strict``. Duplicate or regressing
    sequence numbers are treated as corrupt entries.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
        ends_clean = True
    else:
        ends_clean = bool(raw == "")
    by_seq: dict[int, ProfileRecord] = {}
    corrupt = 0
    torn_tail = False
    last_seq = -1
    for position, line in enumerate(lines):
        is_tail = position == len(lines) - 1
        try:
            seq, record = decode_entry(line)
            if seq <= last_seq:
                raise JournalError(f"journal sequence regressed at entry {seq}")
        except JournalError:
            if is_tail and not ends_clean:
                torn_tail = True
                break
            if strict:
                raise
            corrupt += 1
            continue
        by_seq[seq] = record
        last_seq = seq
    records = tuple(sorted(by_seq.values(), key=lambda record: record.index))
    return JournalRecovery(
        records=records,
        entries_total=len(lines),
        entries_recovered=len(by_seq),
        corrupt_entries=corrupt,
        torn_tail=torn_tail,
    )


__all__ = [
    "JournalRecovery",
    "RecordJournal",
    "decode_entry",
    "encode_entry",
    "recover_journal",
    "SCHEMA_VERSION",
]
