"""Crash-safe record journaling.

The recording thread persists each :class:`ProfileRecord` to an
append-only journal as it arrives, flushed before the next record is
accepted. Two formats share the same recovery semantics:

* ``binary`` (the default): the columnar block format of
  :mod:`repro.core.profiler.codec` — one CRC-32-checked block per
  record behind an 8-byte file magic, read back through a memory map.
* ``json``: the legacy JSONL format — one line per record carrying a
  sequence number and a CRC-32 over the record's canonical JSON
  encoding. Old journals recover byte-for-byte identically.

If the recorder (or the whole process) dies mid-write, the journal is
left with at most one torn entry at the tail; :func:`recover_journal`
auto-detects the format by magic bytes, verifies every entry's
checksum, skips and counts corrupt entries, stops at a torn tail, and
returns everything that survived so ``tpupoint recover`` can resume
offline analysis from a partial run.
"""

from __future__ import annotations

import json
import mmap
from dataclasses import dataclass
from pathlib import Path

from repro.core.profiler import codec
from repro.core.profiler.record import ProfileRecord
from repro.core.profiler.serialize import (
    SCHEMA_VERSION,
    payload_checksum,
    record_from_dict,
    record_to_dict,
)
from repro.errors import JournalError

#: Journals are written in the binary block format unless asked otherwise.
DEFAULT_JOURNAL_FORMAT = "binary"

JOURNAL_FORMATS = ("binary", "json")


def encode_entry(seq: int, record: ProfileRecord) -> str:
    """One JSONL journal line (no trailing newline) for ``record``."""
    payload = record_to_dict(record)
    entry = {"seq": seq, "crc": payload_checksum(payload), "record": payload}
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def decode_entry(line: str) -> tuple[int, ProfileRecord]:
    """Parse and verify one JSONL journal line; raises :class:`JournalError`."""
    try:
        entry = json.loads(line)
    except json.JSONDecodeError as error:
        raise JournalError(f"unparseable journal line: {error}") from None
    if not isinstance(entry, dict) or "record" not in entry:
        raise JournalError("journal line is not a record entry")
    payload = entry["record"]
    if payload_checksum(payload) != entry.get("crc"):
        raise JournalError(f"checksum mismatch on journal entry {entry.get('seq')}")
    try:
        record = record_from_dict(payload)
    except Exception as error:
        raise JournalError(f"journal entry {entry.get('seq')} is malformed: {error}")
    try:
        seq = int(entry["seq"])
    except (KeyError, TypeError, ValueError):
        raise JournalError("journal entry is missing a sequence number") from None
    return seq, record


class RecordJournal:
    """Append-only checksummed journal for one profiling run.

    ``format`` selects the on-disk encoding: ``"binary"`` (default,
    the codec's block format) or ``"json"`` (legacy JSONL).
    """

    def __init__(self, path: str | Path, format: str = DEFAULT_JOURNAL_FORMAT):
        if format not in JOURNAL_FORMATS:
            raise JournalError(
                f"unknown journal format {format!r}; expected one of "
                + "/".join(JOURNAL_FORMATS)
            )
        self.path = Path(path)
        self.format = format
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        self._dead = False
        self.entries_written = 0
        if format == "binary":
            self._handle = open(self.path, "wb")
            self._handle.write(codec.MAGIC)
            self._handle.flush()
            self.bytes_written = len(codec.MAGIC)
        else:
            self._handle = open(self.path, "w", encoding="utf-8")
            self.bytes_written = 0

    @property
    def alive(self) -> bool:
        """Whether the journal still accepts appends."""
        return not self._dead

    def append(self, record: ProfileRecord) -> None:
        """Durably append one record (write + flush before returning)."""
        if self._dead:
            raise JournalError(f"journal {self.path} is closed")
        if self.format == "binary":
            block = codec.encode_block(self._seq, record)
            self._handle.write(block)
            written = len(block)
        else:
            line = encode_entry(self._seq, record)
            self._handle.write(line + "\n")
            written = len(line) + 1
        self._handle.flush()
        self._seq += 1
        self.entries_written += 1
        self.bytes_written += written

    def tear(self, record: ProfileRecord | None = None) -> None:
        """Simulate a crash mid-append: leave a torn entry, go dead.

        Writes a prefix of what would have been the next entry — the
        exact on-disk state a process death mid-``write`` leaves behind
        (a cut block in binary, a line without its newline in JSONL) —
        then stops accepting appends.
        """
        if self._dead:
            return
        if self.format == "binary":
            if record is None:
                record = ProfileRecord(
                    index=self._seq, window_start_us=0.0, window_end_us=0.0
                )
            block = codec.encode_block(self._seq, record)
            self._handle.write(block[: max(8, len(block) // 2)])
        else:
            if record is not None:
                line = encode_entry(self._seq, record)
            else:
                line = '{"crc": 0, "record": {"index": %d, "steps"' % self._seq
            self._handle.write(line[: max(8, len(line) // 2)])
        self.close()

    def close(self) -> None:
        """Flush and close the journal file."""
        if not self._dead:
            self._handle.flush()
            self._handle.close()
            self._dead = True


@dataclass(frozen=True)
class JournalRecovery:
    """What :func:`recover_journal` salvaged from a journal file."""

    records: tuple[ProfileRecord, ...]
    entries_total: int
    entries_recovered: int
    corrupt_entries: int
    torn_tail: bool
    journal_format: str = "json"
    bytes_total: int = 0

    @property
    def lossless(self) -> bool:
        """Whether the journal was recovered without losing anything."""
        return self.corrupt_entries == 0 and not self.torn_tail

    def format(self) -> list[str]:
        return [
            f"format          : {self.journal_format}",
            f"journal entries : {self.entries_total} "
            f"({self.entries_recovered} recovered, {self.corrupt_entries} corrupt)",
            f"torn tail       : {'yes' if self.torn_tail else 'no'}",
            f"records         : {len(self.records)}",
        ]


def detect_journal_format(path: str | Path) -> str:
    """``"binary"`` or ``"json"``, by magic bytes; raises on garbage.

    An empty file reads as JSONL (a binary journal always carries at
    least its file magic). A file that starts with neither the binary
    magic nor a JSON object is not a record journal at all — mixed or
    garbage files get a clean :class:`JournalError`, not a traceback
    from deep inside a parser.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    with open(path, "rb") as handle:
        head = handle.read(len(codec.MAGIC))
    if head.startswith(codec.MAGIC_PREFIX):
        if head != codec.MAGIC:
            version = head[len(codec.MAGIC_PREFIX) :]
            raise JournalError(
                f"{path} is a binary journal of unsupported codec version "
                f"{version.hex() or '??'} (this reader understands version "
                f"{codec.CODEC_VERSION})"
            )
        return "binary"
    if head == b"" or head.lstrip()[:1] == b"{":
        return "json"
    raise JournalError(
        f"{path} is not a record journal (unrecognized magic bytes "
        f"{head[:8].hex()})"
    )


def recover_journal(path: str | Path, strict: bool = False) -> JournalRecovery:
    """Load every intact record from a (possibly torn) journal.

    The format is auto-detected by magic bytes, so old JSONL journals
    and new binary ones recover through the same call. A failure on the
    *last* entry is a torn tail — the expected signature of a crash
    mid-append — and is always tolerated. Failures on earlier entries
    are genuine corruption: skipped and counted by default, raised as
    :class:`JournalError` under ``strict``. Duplicate or regressing
    sequence numbers are treated as corrupt entries.
    """
    path = Path(path)
    journal_format = detect_journal_format(path)
    if journal_format == "binary":
        return _recover_binary(path, strict)
    return _recover_json(path, strict)


def _recover_binary(path: Path, strict: bool) -> JournalRecovery:
    """Block-by-block scan over a memory-mapped binary journal.

    Blocks whose framing is intact but whose CRC (or payload decode)
    fails are skipped and counted; once the framing itself is cut —
    a header or payload shorter than its declared length, or an
    implausible length field — nothing after that offset is readable,
    which is exactly the shape a mid-write crash leaves, so the scan
    stops there with ``torn_tail`` set.
    """
    with open(path, "rb") as handle:
        size = path.stat().st_size
        try:
            buffer: mmap.mmap | bytes = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            buffer = handle.read()
        try:
            view = memoryview(buffer)
            by_seq: dict[int, ProfileRecord] = {}
            entries_total = corrupt = 0
            torn_tail = False
            last_seq = -1
            offset = len(codec.MAGIC)
            while offset < size:
                read = codec.read_block(view, offset)
                if read.status == "torn":
                    entries_total += 1
                    torn_tail = True
                    break
                entries_total += 1
                if read.status == "corrupt" or read.seq <= last_seq:
                    error = read.error or f"journal sequence regressed at entry {read.seq}"
                    if strict:
                        raise JournalError(error)
                    corrupt += 1
                    offset = read.next_offset
                    continue
                by_seq[read.seq] = read.record
                last_seq = read.seq
                offset = read.next_offset
        finally:
            view.release()
            if isinstance(buffer, mmap.mmap):
                buffer.close()
    records = tuple(sorted(by_seq.values(), key=lambda record: record.index))
    return JournalRecovery(
        records=records,
        entries_total=entries_total,
        entries_recovered=len(by_seq),
        corrupt_entries=corrupt,
        torn_tail=torn_tail,
        journal_format="binary",
        bytes_total=size,
    )


def _recover_json(path: Path, strict: bool) -> JournalRecovery:
    try:
        raw = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as error:
        raise JournalError(f"{path} is not a JSONL journal: {error}") from None
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
        ends_clean = True
    else:
        ends_clean = bool(raw == "")
    by_seq: dict[int, ProfileRecord] = {}
    corrupt = 0
    torn_tail = False
    last_seq = -1
    for position, line in enumerate(lines):
        is_tail = position == len(lines) - 1
        try:
            seq, record = decode_entry(line)
            if seq <= last_seq:
                raise JournalError(f"journal sequence regressed at entry {seq}")
        except JournalError:
            if is_tail and not ends_clean:
                torn_tail = True
                break
            if strict:
                raise
            corrupt += 1
            continue
        by_seq[seq] = record
        last_seq = seq
    records = tuple(sorted(by_seq.values(), key=lambda record: record.index))
    return JournalRecovery(
        records=records,
        entries_total=len(lines),
        entries_recovered=len(by_seq),
        corrupt_entries=corrupt,
        torn_tail=torn_tail,
        journal_format="json",
        bytes_total=len(raw.encode("utf-8")),
    )


__all__ = [
    "DEFAULT_JOURNAL_FORMAT",
    "JOURNAL_FORMATS",
    "JournalRecovery",
    "RecordJournal",
    "decode_entry",
    "detect_journal_format",
    "encode_entry",
    "recover_journal",
    "SCHEMA_VERSION",
]
