"""Streaming step assembly.

Profile windows slice the event stream by time, so one training step can
arrive split across consecutive records. Online consumers — the
paper's online linear scan, the optimizer's critical-phase detector —
need *completed* steps in order. :class:`StepStream` does that assembly
with O(1) state: it withholds only the newest (possibly still partial)
step and releases everything older, merging partial views as they
arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.profiler.record import ProfileRecord, StepStats
from repro.errors import ProfilerError


@dataclass
class StepStream:
    """Assembles completed steps from a stream of profile records."""

    _pending: dict[int, StepStats] = field(default_factory=dict)
    _released_through: int = -1

    def submit(self, record: ProfileRecord) -> Iterator[StepStats]:
        """Fold one record in; yields steps that are now complete.

        A step is complete once a *later* step has been observed — the
        profiler never splits step N across a window boundary after step
        N+1 has started.
        """
        for number, stats in record.steps.items():
            if number <= self._released_through:
                raise ProfilerError(
                    f"record {record.index} revisits already-released step {number}"
                )
            pending = self._pending.get(number)
            if pending is None:
                pending = StepStats(step=number)
                self._pending[number] = pending
            pending.merge(stats)
        if not self._pending:
            return
        newest = max(self._pending)
        for number in sorted(self._pending):
            if number == newest:
                break
            yield self._pending.pop(number)
            self._released_through = number

    def flush(self) -> Iterator[StepStats]:
        """Release everything still pending (call at end of stream)."""
        for number in sorted(self._pending):
            yield self._pending.pop(number)
            self._released_through = number

    @property
    def pending_steps(self) -> int:
        """Steps currently withheld (at most one in normal operation)."""
        return len(self._pending)
