"""TPUPoint-Analyzer orchestration.

Ties the pieces together: merge profile records into per-step statistics,
build frequency vectors, detect phases with any of the three algorithms
(k-means, DBSCAN, OLS), and export visualizations. The methods mirror the
three-stage descriptions of Section IV-A, including the elbow-method
selection of k (k-means) and of the minimum sample count (DBSCAN).

k-means and DBSCAN post-process the whole run and hold the full feature
matrix (DBSCAN additionally a pairwise-distance matrix); the optional
``memory_budget_bytes`` enforces that footprint, reproducing the paper's
note that both clustering methods hit memory limits on the largest
workloads while OLS — which holds only two steps of state — never does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.analyzer import dbscan as dbscan_mod
from repro.core.analyzer import kmeans as kmeans_mod
from repro.core.analyzer import ols as ols_mod
from repro.core.analyzer.coverage import CoverageReport, coverage
from repro.core.analyzer.csvexport import write_operator_csv, write_phase_csv
from repro.core.analyzer.elbow import find_elbow
from repro.core.analyzer.features import FeatureMatrix, build_features, merge_records
from repro.core.analyzer.pca import PCA
from repro.core.analyzer.phases import Phase, build_phases
from repro.core.analyzer.visualize import write_chrome_trace
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.errors import AnalyzerError, ClusteringError

_DURATION_SECONDS = obs.histogram(
    "repro_analyzer_duration_seconds",
    "Wall time of one phase-detection run, by algorithm.",
    labels=("algorithm",),
    buckets=obs.ALGORITHM_BUCKETS,
)
_SWEEP_SECONDS = obs.histogram(
    "repro_analyzer_sweep_seconds",
    "Wall time of one parameter sweep, by algorithm.",
    labels=("algorithm",),
    buckets=obs.ALGORITHM_BUCKETS,
)


class AnalyzerMemoryError(AnalyzerError):
    """A clustering method exceeded the analyzer's memory budget."""


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one phase-detection run."""

    method: str
    params: dict
    labels: np.ndarray
    phases: list[Phase]

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    def coverage(self) -> CoverageReport:
        """Execution-time coverage of the detected phases."""
        return coverage(self.phases)

    def transition_matrix(self) -> tuple[list[int], np.ndarray]:
        """Phase-to-phase step transition counts, in timeline order.

        Returns ``(phase_ids, matrix)`` where ``matrix[i, j]`` counts
        how often a step labeled ``phase_ids[i]`` was immediately
        followed by one labeled ``phase_ids[j]``. For OLS the matrix is
        band-diagonal (phases are contiguous); for k-means/DBSCAN,
        off-diagonal mass shows recurring behaviour — the structure
        SimPoint exploits when it simulates one point per cluster.
        """
        phase_ids = sorted({int(label) for label in self.labels.tolist()})
        index = {phase: i for i, phase in enumerate(phase_ids)}
        matrix = np.zeros((len(phase_ids), len(phase_ids)), dtype=int)
        labels = self.labels.tolist()
        for current, nxt in zip(labels, labels[1:]):
            matrix[index[int(current)], index[int(nxt)]] += 1
        return phase_ids, matrix

    def recurrence_fraction(self) -> float:
        """Fraction of transitions that *re-enter* a previously seen phase.

        Zero for OLS (contiguous phases never recur); positive for
        clustering methods when behaviour alternates, e.g. train/eval
        interleaving.
        """
        labels = self.labels.tolist()
        seen: set[int] = set()
        reentries = 0
        transitions = 0
        previous: int | None = None
        for label in labels:
            label = int(label)
            if previous is not None and label != previous:
                transitions += 1
                if label in seen:
                    reentries += 1
            seen.add(label)
            previous = label
        if transitions == 0:
            return 0.0
        return reentries / transitions


@dataclass
class TPUPointAnalyzer:
    """Post-execution analysis over one run's profile records."""

    records: list[ProfileRecord]
    max_pca_dims: int = 100
    memory_budget_bytes: float | None = None
    seed: int = 0
    _steps: list[StepStats] | None = field(default=None, repr=False)
    _features: FeatureMatrix | None = field(default=None, repr=False)
    _reduced: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.records:
            raise AnalyzerError("analyzer needs at least one profile record")

    # --- shared stage 1: aggregation and features ---------------------------

    @property
    def steps(self) -> list[StepStats]:
        """All profiled steps, merged across records, in step order."""
        if self._steps is None:
            with obs.trace("analyzer.merge_records", records=len(self.records)) as span:
                self._steps = merge_records(self.records)
                span.set(steps=len(self._steps))
            if not self._steps:
                raise AnalyzerError("profile records contain no steps")
        return self._steps

    @property
    def features(self) -> FeatureMatrix:
        """Frequency-vector representation of the steps."""
        if self._features is None:
            with obs.trace("analyzer.build_features", steps=len(self.steps)):
                self._features = build_features(self.steps)
        return self._features

    def reduced_matrix(self) -> np.ndarray:
        """PCA-reduced step vectors (at most ``max_pca_dims`` dims)."""
        if self._reduced is None:
            combined = self.features.combined(standardize=True)
            self._check_memory(combined.nbytes, "k-means feature matrix")
            with obs.trace(
                "analyzer.pca", rows=combined.shape[0], dims=combined.shape[1]
            ) as span:
                pca = PCA(max_components=self.max_pca_dims)
                self._reduced = pca.fit_transform(combined)
                span.set(reduced_dims=self._reduced.shape[1])
        return self._reduced

    def _check_memory(self, required_bytes: float, what: str) -> None:
        if self.memory_budget_bytes is not None and required_bytes > self.memory_budget_bytes:
            raise AnalyzerMemoryError(
                f"{what} needs {required_bytes:.0f} B, over the "
                f"{self.memory_budget_bytes:.0f} B budget"
            )

    # --- k-means ------------------------------------------------------------

    def _kmeans_results(
        self, k_values: range | list[int]
    ) -> dict[int, kmeans_mod.KMeansResult]:
        """Instrumented k sweep: one nested span per per-k fit.

        Mirrors :func:`repro.core.analyzer.kmeans.sweep_k` (same rng
        sequence, same infeasible-k handling) but records the sweep and
        each fit as toolchain spans plus a sweep-duration histogram.
        """
        matrix = self.reduced_matrix()
        rng = np.random.default_rng(self.seed)
        began = time.perf_counter()
        with obs.trace("analyzer.kmeans_sweep", steps=matrix.shape[0]) as span:
            results: dict[int, kmeans_mod.KMeansResult] = {}
            for k in k_values:
                if k > matrix.shape[0]:
                    break
                with obs.trace("analyzer.kmeans_fit", k=k) as fit_span:
                    result = kmeans_mod.kmeans(matrix, k, rng)
                    fit_span.set(inertia=result.inertia, iterations=result.iterations)
                results[k] = result
            if not results:
                raise ClusteringError("no feasible k values for the sample count")
            span.set(k_count=len(results))
        _SWEEP_SECONDS.labels(algorithm="kmeans").observe(time.perf_counter() - began)
        return results

    def kmeans_sweep(self, k_values: range | list[int] = range(1, 16)) -> dict[int, float]:
        """SSD per k (Figure 4's series)."""
        results = self._kmeans_results(k_values)
        return {k: result.inertia for k, result in results.items()}

    def choose_k(
        self, k_values: range | list[int] = range(1, 16), criterion: str = "elbow"
    ) -> int:
        """Select k by the elbow method (the paper) or SimPoint's BIC."""
        if criterion == "elbow":
            sweep = self.kmeans_sweep(k_values)
            ks = sorted(sweep)
            return ks[find_elbow([float(k) for k in ks], [sweep[k] for k in ks])]
        if criterion == "bic":
            from repro.core.analyzer.bic import choose_k_bic

            return choose_k_bic(self.reduced_matrix(), self._kmeans_results(k_values))
        raise AnalyzerError(f"unknown k-selection criterion {criterion!r}")

    def kmeans_phases(self, k: int | None = None) -> AnalysisResult:
        """Detect phases with k-means (elbow-selected k by default)."""
        began = time.perf_counter()
        with obs.trace("analyzer.kmeans_phases") as span:
            if k is None:
                k = self.choose_k()
            matrix = self.reduced_matrix()
            rng = np.random.default_rng(self.seed)
            with obs.trace("analyzer.kmeans_fit", k=k):
                result = kmeans_mod.kmeans(matrix, k, rng)
            span.set(k=k, phases=len(set(result.labels.tolist())))
            analysis = AnalysisResult(
                method="kmeans",
                params={"k": k, "inertia": result.inertia},
                labels=result.labels,
                phases=build_phases(self.steps, result.labels),
            )
        _DURATION_SECONDS.labels(algorithm="kmeans").observe(time.perf_counter() - began)
        return analysis

    # --- DBSCAN ---------------------------------------------------------------

    def dbscan_sweep(
        self, min_samples_values: range | list[int] = range(5, 181, 25)
    ) -> dict[int, float]:
        """Noise ratio per min_samples (Figure 5's series)."""
        matrix = self.reduced_matrix()
        self._check_memory(matrix.shape[0] ** 2 * 8.0, "DBSCAN distance matrix")
        began = time.perf_counter()
        with obs.trace("analyzer.dbscan_sweep", steps=matrix.shape[0]) as span:
            results = dbscan_mod.sweep_min_samples(matrix, min_samples_values)
            span.set(sweep_points=len(results))
        _SWEEP_SECONDS.labels(algorithm="dbscan").observe(time.perf_counter() - began)
        return {ms: result.noise_ratio for ms, result in results.items()}

    def choose_min_samples(
        self, min_samples_values: range | list[int] = range(5, 181, 25)
    ) -> int:
        """Elbow-selected minimum sample count."""
        sweep = self.dbscan_sweep(min_samples_values)
        values = sorted(sweep)
        return values[
            find_elbow([float(v) for v in values], [sweep[v] for v in values])
        ]

    def dbscan_phases(self, min_samples: int = 30) -> AnalysisResult:
        """Detect phases with DBSCAN; noise forms its own phase."""
        began = time.perf_counter()
        with obs.trace("analyzer.dbscan_phases", min_samples=min_samples) as span:
            matrix = self.reduced_matrix()
            self._check_memory(matrix.shape[0] ** 2 * 8.0, "DBSCAN distance matrix")
            eps = dbscan_mod.default_eps(matrix)
            result = dbscan_mod.dbscan(matrix, eps, min_samples)
            span.set(eps=eps, noise_ratio=result.noise_ratio)
            analysis = AnalysisResult(
                method="dbscan",
                params={
                    "min_samples": min_samples,
                    "eps": eps,
                    "noise_ratio": result.noise_ratio,
                },
                labels=result.labels,
                phases=build_phases(self.steps, result.labels),
            )
        _DURATION_SECONDS.labels(algorithm="dbscan").observe(time.perf_counter() - began)
        return analysis

    # --- OLS ---------------------------------------------------------------------

    def ols_sweep(self, thresholds: list[float]) -> dict[float, int]:
        """Phase count per similarity threshold (Figure 6's series)."""
        began = time.perf_counter()
        with obs.trace("analyzer.ols_sweep", thresholds=len(thresholds)):
            sweep = ols_mod.sweep_thresholds(self.steps, thresholds)
        _SWEEP_SECONDS.labels(algorithm="ols").observe(time.perf_counter() - began)
        return sweep

    def ols_phases(
        self, threshold: float = ols_mod.DEFAULT_SIMILARITY_THRESHOLD
    ) -> AnalysisResult:
        """Detect phases with the online linear scan."""
        began = time.perf_counter()
        with obs.trace("analyzer.ols_phases", threshold=threshold) as span:
            labels = ols_mod.ols_labels(self.steps, threshold)
            span.set(phases=len(set(labels.tolist())))
            analysis = AnalysisResult(
                method="ols",
                params={"threshold": threshold},
                labels=labels,
                phases=build_phases(self.steps, labels),
            )
        _DURATION_SECONDS.labels(algorithm="ols").observe(time.perf_counter() - began)
        return analysis

    # --- dispatch + export ----------------------------------------------------------

    def analyze(self, method: str = "ols", **params) -> AnalysisResult:
        """Run one of the three detection algorithms by name."""
        if method == "ols":
            return self.ols_phases(**params)
        if method == "kmeans":
            return self.kmeans_phases(**params)
        if method == "dbscan":
            return self.dbscan_phases(**params)
        raise AnalyzerError(f"unknown method {method!r}; use ols/kmeans/dbscan")

    def export(self, directory, result: AnalysisResult) -> dict[str, str]:
        """Write the chrome trace and CSVs; returns {kind: path}."""
        from pathlib import Path

        directory = Path(directory)
        with obs.trace("analyzer.export", method=result.method):
            return self._export(directory, result)

    def _export(self, directory, result: AnalysisResult) -> dict[str, str]:
        trace = write_chrome_trace(
            directory / f"{result.method}_trace.json", self.records, result.phases
        )
        phase_csv = write_phase_csv(directory / f"{result.method}_phases.csv", result.phases)
        op_csv = write_operator_csv(
            directory / f"{result.method}_operators.csv", result.phases
        )
        return {"trace": str(trace), "phases": str(phase_csv), "operators": str(op_csv)}
