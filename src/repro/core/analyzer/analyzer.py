"""TPUPoint-Analyzer orchestration.

Ties the pieces together: merge profile records into per-step statistics,
build frequency vectors, detect phases with any of the three algorithms
(k-means, DBSCAN, OLS), and export visualizations. The methods mirror the
three-stage descriptions of Section IV-A, including the elbow-method
selection of k (k-means) and of the minimum sample count (DBSCAN).

k-means and DBSCAN post-process the whole run; the optional
``memory_budget_bytes`` bounds that footprint — the feature matrix for
k-means, the neighbor graph plus one O(block x n) distance block for
DBSCAN (the blocked shared kernel of
:mod:`repro.core.analyzer.distance` replaced the old O(n^2 d) broadcast
tensor) — reproducing the paper's note that both clustering methods hit
memory limits on the largest workloads while OLS, which holds only two
steps of state, never does.

Sweeps share work aggressively (see ``docs/performance.md``): the
DBSCAN min_samples sweep spends exactly one distance pass and relabels
a cached neighbor graph per sweep point; the k-means k-sweep and its
k-means++ restarts fan out over a deterministic
:class:`repro.parallel.WorkerPool` (``workers=``, bit-identical at any
width); and a content-hashed :class:`~repro.core.analyzer.cache.AnalysisCache`
memoizes feature matrix → PCA reduction → sweep results across repeated
invocations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.analyzer import dbscan as dbscan_mod
from repro.core.analyzer import kmeans as kmeans_mod
from repro.core.analyzer import ols as ols_mod
from repro.core.analyzer.cache import AnalysisCache, matrix_key
from repro.core.analyzer.coverage import CoverageReport, coverage
from repro.core.analyzer.csvexport import write_operator_csv, write_phase_csv
from repro.core.analyzer.distance import NeighborGraph, build_neighbor_graph
from repro.core.analyzer.elbow import find_elbow
from repro.core.analyzer.features import FeatureMatrix, build_features, merge_records
from repro.core.analyzer.pca import PCA
from repro.core.analyzer.phases import Phase, build_phases
from repro.core.analyzer.visualize import write_chrome_trace
from repro.core.profiler.record import ProfileRecord, StepStats
from repro.errors import AnalyzerError, AnalyzerMemoryError, ClusteringError
from repro.parallel import WorkerPool

__all__ = [
    "AnalysisResult",
    "AnalyzerMemoryError",
    "TPUPointAnalyzer",
]

_DURATION_SECONDS = obs.histogram(
    "repro_analyzer_duration_seconds",
    "Wall time of one phase-detection run, by algorithm.",
    labels=("algorithm",),
    buckets=obs.ALGORITHM_BUCKETS,
)
_SWEEP_SECONDS = obs.histogram(
    "repro_analyzer_sweep_seconds",
    "Wall time of one parameter sweep, by algorithm.",
    labels=("algorithm",),
    buckets=obs.ALGORITHM_BUCKETS,
)


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one phase-detection run."""

    method: str
    params: dict
    labels: np.ndarray
    phases: list[Phase]

    @property
    def num_phases(self) -> int:
        """Number of detected phases."""
        return len(self.phases)

    def coverage(self) -> CoverageReport:
        """Execution-time coverage of the detected phases."""
        return coverage(self.phases)

    def transition_matrix(self) -> tuple[list[int], np.ndarray]:
        """Phase-to-phase step transition counts, in timeline order.

        Returns ``(phase_ids, matrix)`` where ``matrix[i, j]`` counts
        how often a step labeled ``phase_ids[i]`` was immediately
        followed by one labeled ``phase_ids[j]``. For OLS the matrix is
        band-diagonal (phases are contiguous); for k-means/DBSCAN,
        off-diagonal mass shows recurring behaviour — the structure
        SimPoint exploits when it simulates one point per cluster.
        """
        phase_ids = sorted({int(label) for label in self.labels.tolist()})
        index = {phase: i for i, phase in enumerate(phase_ids)}
        matrix = np.zeros((len(phase_ids), len(phase_ids)), dtype=int)
        labels = self.labels.tolist()
        for current, nxt in zip(labels, labels[1:]):
            matrix[index[int(current)], index[int(nxt)]] += 1
        return phase_ids, matrix

    def recurrence_fraction(self) -> float:
        """Fraction of transitions that *re-enter* a previously seen phase.

        Zero for OLS (contiguous phases never recur); positive for
        clustering methods when behaviour alternates, e.g. train/eval
        interleaving.
        """
        labels = self.labels.tolist()
        seen: set[int] = set()
        reentries = 0
        transitions = 0
        previous: int | None = None
        for label in labels:
            label = int(label)
            if previous is not None and label != previous:
                transitions += 1
                if label in seen:
                    reentries += 1
            seen.add(label)
            previous = label
        if transitions == 0:
            return 0.0
        return reentries / transitions


@dataclass
class TPUPointAnalyzer:
    """Post-execution analysis over one run's profile records.

    ``workers`` widens the sweep fan-out (1 = serial; any width gives
    bit-identical results); ``cache`` memoizes PCA reductions and sweep
    series by content hash, in memory and — when constructed with a
    directory — across processes.
    """

    records: list[ProfileRecord]
    max_pca_dims: int = 100
    memory_budget_bytes: float | None = None
    seed: int = 0
    workers: int = 1
    cache: AnalysisCache | None = None
    _steps: list[StepStats] | None = field(default=None, repr=False)
    _features: FeatureMatrix | None = field(default=None, repr=False)
    _reduced: np.ndarray | None = field(default=None, repr=False)
    _pool: WorkerPool | None = field(default=None, repr=False)
    _graph: NeighborGraph | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.records:
            raise AnalyzerError("analyzer needs at least one profile record")

    # --- shared stage 1: aggregation and features ---------------------------

    @property
    def steps(self) -> list[StepStats]:
        """All profiled steps, merged across records, in step order."""
        if self._steps is None:
            with obs.trace("analyzer.merge_records", records=len(self.records)) as span:
                self._steps = merge_records(self.records)
                span.set(steps=len(self._steps))
            if not self._steps:
                raise AnalyzerError("profile records contain no steps")
        return self._steps

    @property
    def features(self) -> FeatureMatrix:
        """Frequency-vector representation of the steps."""
        if self._features is None:
            with obs.trace("analyzer.build_features", steps=len(self.steps)):
                self._features = build_features(self.steps)
        return self._features

    @property
    def pool(self) -> WorkerPool:
        """The deterministic executor behind the parallel sweep paths."""
        if self._pool is None:
            self._pool = WorkerPool(self.workers, label="analyzer")
        return self._pool

    def close(self) -> None:
        """Release pool threads (safe to call on a never-used analyzer)."""
        if self._pool is not None:
            self._pool.shutdown()

    def reduced_matrix(self) -> np.ndarray:
        """PCA-reduced step vectors (at most ``max_pca_dims`` dims)."""
        if self._reduced is None:
            combined = self.features.combined(standardize=True)
            self._check_memory(combined.nbytes, "k-means feature matrix")
            key = None
            if self.cache is not None:
                key = matrix_key(combined, "pca", max_dims=self.max_pca_dims)
                cached = self.cache.get_array(key)
                if cached is not None:
                    self._reduced = cached
                    return self._reduced
            with obs.trace(
                "analyzer.pca", rows=combined.shape[0], dims=combined.shape[1]
            ) as span:
                pca = PCA(max_components=self.max_pca_dims)
                self._reduced = pca.fit_transform(combined)
                span.set(reduced_dims=self._reduced.shape[1])
            if key is not None:
                self.cache.put_array(key, self._reduced)
        return self._reduced

    def _check_memory(self, required_bytes: float, what: str) -> None:
        if self.memory_budget_bytes is not None and required_bytes > self.memory_budget_bytes:
            raise AnalyzerMemoryError(
                f"{what} needs {required_bytes:.0f} B, over the "
                f"{self.memory_budget_bytes:.0f} B budget"
            )

    # --- k-means ------------------------------------------------------------

    def _kmeans_results(
        self, k_values: range | list[int]
    ) -> dict[int, kmeans_mod.KMeansResult]:
        """Instrumented k sweep: the (k x restart) grid over the pool.

        Every fit draws from its own seed-derived substream
        (:func:`repro.core.analyzer.kmeans.restart_key`), so the result
        is bit-identical at any ``workers`` width.
        """
        matrix = self.reduced_matrix()
        began = time.perf_counter()
        with obs.trace(
            "analyzer.kmeans_sweep", steps=matrix.shape[0], workers=self.pool.workers
        ) as span:
            feasible = [k for k in k_values if k <= matrix.shape[0]]
            if not feasible:
                raise ClusteringError("no feasible k values for the sample count")
            if self.pool.is_serial:
                # Inline execution keeps one span per k nested under the
                # sweep span (span parents never cross threads).
                results: dict[int, kmeans_mod.KMeansResult] = {}
                for k in feasible:
                    with obs.trace("analyzer.kmeans_fit", k=k) as fit_span:
                        result = kmeans_mod.kmeans(matrix, k, seed=self.seed)
                        fit_span.set(inertia=result.inertia, iterations=result.iterations)
                    results[k] = result
            else:
                results = kmeans_mod.sweep_k(
                    matrix, feasible, seed=self.seed, pool=self.pool
                )
            span.set(k_count=len(results))
        _SWEEP_SECONDS.labels(algorithm="kmeans").observe(time.perf_counter() - began)
        return results

    def kmeans_sweep(self, k_values: range | list[int] = kmeans_mod.K_SWEEP) -> dict[int, float]:
        """SSD per k (Figure 4's series), memoized by content hash."""
        key = None
        if self.cache is not None:
            key = matrix_key(
                self.reduced_matrix(),
                "kmeans_sweep",
                seed=self.seed,
                k_values=list(k_values),
            )
            cached = self.cache.get_table(key)
            if cached is not None:
                return {int(k): float(v) for k, v in cached.items()}
        results = self._kmeans_results(k_values)
        sweep = {k: result.inertia for k, result in results.items()}
        if key is not None:
            self.cache.put_table(key, {str(k): v for k, v in sweep.items()})
        return sweep

    def choose_k(
        self, k_values: range | list[int] = kmeans_mod.K_SWEEP, criterion: str = "elbow"
    ) -> int:
        """Select k by the elbow method (the paper) or SimPoint's BIC."""
        if criterion == "elbow":
            sweep = self.kmeans_sweep(k_values)
            ks = sorted(sweep)
            return ks[find_elbow([float(k) for k in ks], [sweep[k] for k in ks])]
        if criterion == "bic":
            from repro.core.analyzer.bic import choose_k_bic

            return choose_k_bic(self.reduced_matrix(), self._kmeans_results(k_values))
        raise AnalyzerError(f"unknown k-selection criterion {criterion!r}")

    def kmeans_phases(self, k: int | None = None) -> AnalysisResult:
        """Detect phases with k-means (elbow-selected k by default)."""
        began = time.perf_counter()
        with obs.trace("analyzer.kmeans_phases") as span:
            if k is None:
                k = self.choose_k()
            matrix = self.reduced_matrix()
            key = labels = inertia = None
            if self.cache is not None:
                key = matrix_key(matrix, "kmeans_labels", seed=self.seed, k=k)
                table = self.cache.get_table(key)
                if table is not None:
                    labels = np.asarray(table["labels"], dtype=int)
                    inertia = float(table["inertia"])
            if labels is None:
                with obs.trace("analyzer.kmeans_fit", k=k):
                    result = kmeans_mod.kmeans(
                        matrix, k, seed=self.seed, pool=self.pool
                    )
                labels, inertia = result.labels, result.inertia
                if key is not None:
                    self.cache.put_table(
                        key, {"labels": labels.tolist(), "inertia": inertia}
                    )
            span.set(k=k, phases=len(set(labels.tolist())))
            analysis = AnalysisResult(
                method="kmeans",
                params={"k": k, "inertia": inertia},
                labels=labels,
                phases=build_phases(self.steps, labels),
            )
        _DURATION_SECONDS.labels(algorithm="kmeans").observe(time.perf_counter() - began)
        return analysis

    # --- DBSCAN ---------------------------------------------------------------

    def neighbor_graph(self) -> NeighborGraph:
        """The eps-neighborhood graph, built once and reused.

        One blocked distance pass computes both the k-distance eps
        heuristic and the adjacency; the min_samples sweep, the elbow
        choice, and ``dbscan_phases`` all relabel this same graph.
        """
        if self._graph is None:
            matrix = self.reduced_matrix()
            self._graph = build_neighbor_graph(
                matrix, memory_budget_bytes=self.memory_budget_bytes
            )
        return self._graph

    def dbscan_sweep(
        self, min_samples_values: range | list[int] = dbscan_mod.MIN_SAMPLES_SWEEP
    ) -> dict[int, float]:
        """Noise ratio per min_samples (Figure 5's series), memoized."""
        key = None
        if self.cache is not None:
            key = matrix_key(
                self.reduced_matrix(),
                "dbscan_sweep",
                values=list(min_samples_values),
            )
            cached = self.cache.get_table(key)
            if cached is not None:
                return {int(ms): float(v) for ms, v in cached.items()}
        began = time.perf_counter()
        with obs.trace(
            "analyzer.dbscan_sweep",
            steps=self.reduced_matrix().shape[0],
            workers=self.pool.workers,
        ) as span:
            results = dbscan_mod.sweep_min_samples(
                self.reduced_matrix(),
                min_samples_values,
                graph=self.neighbor_graph(),
                pool=self.pool,
            )
            span.set(sweep_points=len(results))
        _SWEEP_SECONDS.labels(algorithm="dbscan").observe(time.perf_counter() - began)
        sweep = {ms: result.noise_ratio for ms, result in results.items()}
        if key is not None:
            self.cache.put_table(key, {str(ms): v for ms, v in sweep.items()})
        return sweep

    def choose_min_samples(
        self, min_samples_values: range | list[int] = dbscan_mod.MIN_SAMPLES_SWEEP
    ) -> int:
        """Elbow-selected minimum sample count."""
        sweep = self.dbscan_sweep(min_samples_values)
        values = sorted(sweep)
        return values[
            find_elbow([float(v) for v in values], [sweep[v] for v in values])
        ]

    def dbscan_phases(self, min_samples: int = 30) -> AnalysisResult:
        """Detect phases with DBSCAN; noise forms its own phase."""
        began = time.perf_counter()
        with obs.trace("analyzer.dbscan_phases", min_samples=min_samples) as span:
            graph = self.neighbor_graph()
            result = dbscan_mod.dbscan_from_graph(graph, min_samples)
            span.set(eps=graph.eps, noise_ratio=result.noise_ratio)
            analysis = AnalysisResult(
                method="dbscan",
                params={
                    "min_samples": min_samples,
                    "eps": graph.eps,
                    "noise_ratio": result.noise_ratio,
                },
                labels=result.labels,
                phases=build_phases(self.steps, result.labels),
            )
        _DURATION_SECONDS.labels(algorithm="dbscan").observe(time.perf_counter() - began)
        return analysis

    # --- OLS ---------------------------------------------------------------------

    def ols_sweep(self, thresholds: list[float]) -> dict[float, int]:
        """Phase count per similarity threshold (Figure 6's series)."""
        began = time.perf_counter()
        with obs.trace("analyzer.ols_sweep", thresholds=len(thresholds)):
            sweep = ols_mod.sweep_thresholds(self.steps, thresholds)
        _SWEEP_SECONDS.labels(algorithm="ols").observe(time.perf_counter() - began)
        return sweep

    def ols_phases(
        self, threshold: float = ols_mod.DEFAULT_SIMILARITY_THRESHOLD
    ) -> AnalysisResult:
        """Detect phases with the online linear scan."""
        began = time.perf_counter()
        with obs.trace("analyzer.ols_phases", threshold=threshold) as span:
            labels = ols_mod.ols_labels(self.steps, threshold)
            span.set(phases=len(set(labels.tolist())))
            analysis = AnalysisResult(
                method="ols",
                params={"threshold": threshold},
                labels=labels,
                phases=build_phases(self.steps, labels),
            )
        _DURATION_SECONDS.labels(algorithm="ols").observe(time.perf_counter() - began)
        return analysis

    # --- dispatch + export ----------------------------------------------------------

    def analyze(self, method: str = "ols", **params) -> AnalysisResult:
        """Run one of the three detection algorithms by name."""
        if method == "ols":
            return self.ols_phases(**params)
        if method == "kmeans":
            return self.kmeans_phases(**params)
        if method == "dbscan":
            return self.dbscan_phases(**params)
        raise AnalyzerError(f"unknown method {method!r}; use ols/kmeans/dbscan")

    def export(self, directory, result: AnalysisResult) -> dict[str, str]:
        """Write the chrome trace and CSVs; returns {kind: path}."""
        from pathlib import Path

        directory = Path(directory)
        with obs.trace("analyzer.export", method=result.method):
            return self._export(directory, result)

    def _export(self, directory, result: AnalysisResult) -> dict[str, str]:
        trace = write_chrome_trace(
            directory / f"{result.method}_trace.json", self.records, result.phases
        )
        phase_csv = write_phase_csv(directory / f"{result.method}_phases.csv", result.phases)
        op_csv = write_operator_csv(
            directory / f"{result.method}_operators.csv", result.phases
        )
        return {"trace": str(trace), "phases": str(phase_csv), "operators": str(op_csv)}
