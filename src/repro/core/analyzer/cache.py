"""Content-hashed memoization for the analyzer's expensive stages.

The offline pipeline is a pure function of its inputs: profile records
→ feature matrix → PCA reduction → clustering sweeps. Each stage's
inputs therefore make a sound cache key — a SHA-256 over the exact
bytes of the feature matrix (dtype, shape, contents) plus the stage's
parameters — and completed stages can be skipped on repetition:
``tpupoint recover`` after ``analyze``, repeated ``analyze``
invocations over the same saved records, or a sweep re-entered with a
different downstream choice.

Two tiers:

* an in-process dict (always on) — repeated sweeps inside one
  process, e.g. ``choose_k`` followed by ``kmeans_phases``;
* an optional on-disk tier (``AnalysisCache(directory=...)``,
  ``tpupoint analyze --cache-dir``) — ``.npz`` for arrays, ``.json``
  for sweep tables, so separate CLI invocations skip completed stages.

Keys are content hashes, so a changed record set, seed, worker count
(irrelevant — results are worker-count-invariant), PCA cap, or sweep
range simply misses. Hits/misses/stores are observable as
``repro_analyzer_cache_events_total``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.profiler.codec import CODEC_VERSION
from repro.core.profiler.serialize import SCHEMA_VERSION
from repro.errors import CacheError

_CACHE_EVENTS = obs.counter(
    "repro_analyzer_cache_events_total",
    "Analysis memo-cache lookups and stores, by event.",
    labels=("event",),
)

_KEY_BYTES = 16  # 128 hex-truncated bits: ample for a content-addressed store


def matrix_key(matrix: np.ndarray, stage: str, **params) -> str:
    """A content hash of one stage's exact inputs.

    Hashes the array's dtype, shape, and raw bytes plus a canonical
    rendering of the stage name and parameters. Any input change —
    including dtype or layout-invisible value changes — yields a new key.
    The record schema and binary codec versions are folded in as a salt,
    so entries written before a format change can never be served after
    one: a version bump invalidates the whole store by construction.
    """
    digest = hashlib.sha256()
    digest.update(f"schema={SCHEMA_VERSION};codec={CODEC_VERSION};".encode("utf-8"))
    digest.update(stage.encode("utf-8"))
    digest.update(str(matrix.dtype).encode("utf-8"))
    digest.update(repr(matrix.shape).encode("utf-8"))
    digest.update(np.ascontiguousarray(matrix).tobytes())
    digest.update(
        json.dumps(params, sort_keys=True, default=repr).encode("utf-8")
    )
    return digest.hexdigest()[: _KEY_BYTES * 2]


class AnalysisCache:
    """Memoized stage results, in memory and optionally on disk."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    # --- bookkeeping -------------------------------------------------------

    def _record(self, event: str) -> None:
        if event == "hit":
            self.hits += 1
        elif event == "miss":
            self.misses += 1
        _CACHE_EVENTS.labels(event=event).inc()

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str, suffix: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}{suffix}"

    # --- arrays (PCA reductions, label vectors) ----------------------------

    def get_array(self, key: str) -> np.ndarray | None:
        """Cached array for ``key``, or None on a miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self._record("hit")
            return cached
        if self.directory is not None:
            path = self._path(key, ".npz")
            if path.exists():
                try:
                    with np.load(path) as archive:
                        value = archive["value"]
                except (OSError, KeyError, ValueError) as error:
                    raise CacheError(f"unreadable cache entry {path}: {error}") from error
                self._memory[key] = value
                self._record("hit")
                return value
        self._record("miss")
        return None

    def put_array(self, key: str, value: np.ndarray) -> np.ndarray:
        """Store an array under ``key`` (memory + optional disk)."""
        self._memory[key] = value
        if self.directory is not None:
            np.savez_compressed(self._path(key, ".npz"), value=value)
        self._record("store")
        return value

    # --- JSON tables (sweep series) ----------------------------------------

    def get_table(self, key: str) -> dict | None:
        """Cached JSON-able table for ``key``, or None on a miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self._record("hit")
            return cached
        if self.directory is not None:
            path = self._path(key, ".json")
            if path.exists():
                try:
                    value = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as error:
                    raise CacheError(f"unreadable cache entry {path}: {error}") from error
                self._memory[key] = value
                self._record("hit")
                return value
        self._record("miss")
        return None

    def put_table(self, key: str, value: dict) -> dict:
        """Store a JSON-able table under ``key`` (memory + optional disk)."""
        self._memory[key] = value
        if self.directory is not None:
            self._path(key, ".json").write_text(
                json.dumps(value, sort_keys=True) + "\n", encoding="utf-8"
            )
        self._record("store")
        return value
