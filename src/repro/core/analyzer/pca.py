"""Principal component analysis, implemented from scratch.

TPUPoint-Analyzer reduces each step's frequency vector to at most 100
dimensions with PCA before clustering (Section IV-A), following
SimPoint's use of dimension reduction before k-means.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalyzerError


class PCA:
    """Truncated PCA via singular value decomposition."""

    def __init__(self, max_components: int = 100):
        if max_components <= 0:
            raise AnalyzerError("max_components must be positive")
        self.max_components = max_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self.components_ is not None

    def fit(self, matrix: np.ndarray) -> "PCA":
        """Learn the principal axes of ``matrix`` (rows are samples)."""
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise AnalyzerError("PCA needs a non-empty 2-D matrix")
        self.mean_ = matrix.mean(axis=0, keepdims=True)
        centered = matrix - self.mean_
        # SVD of the centered data: rows project onto V's leading rows.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        rank = min(self.max_components, vt.shape[0])
        self.components_ = vt[:rank]
        denominator = max(matrix.shape[0] - 1, 1)
        self.explained_variance_ = (singular_values[:rank] ** 2) / denominator
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Project samples onto the learned axes."""
        if not self.fitted:
            raise AnalyzerError("PCA.transform called before fit")
        return (matrix - self.mean_) @ self.components_.T

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit and project in one call."""
        return self.fit(matrix).transform(matrix)

    def explained_variance_ratio(self) -> np.ndarray:
        """Per-component fraction of total variance captured."""
        if self.explained_variance_ is None:
            raise AnalyzerError("PCA not fitted")
        total = self.explained_variance_.sum()
        if total == 0.0:
            return np.zeros_like(self.explained_variance_)
        return self.explained_variance_ / total
