"""Blocked pairwise-distance kernels shared by the clustering methods.

Every distance the analyzer needs — the DBSCAN neighbor graph, its
k-distance eps heuristic, the k-means assignment step — reduces to
squared Euclidean distances, computed here with the Gram identity

    ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b

in *row blocks*: a block of rows is expanded against all columns at
once (a BLAS matmul plus broadcasts), so peak transient memory is
O(block x n) instead of the O(n^2 d) the previous broadcast tensor
``(a[:, None, :] - b[None, :, :])`` materialized. ``memory_budget_bytes``
sizes the block; a budget too small for even a single row raises
:class:`~repro.errors.AnalyzerMemoryError`, preserving the paper's
observation that clustering hits memory limits where OLS does not.

The module also owns the analyzer's *distance-pass accounting*: the
``repro_analyzer_distance_passes_total`` counter increments once per
full self-pairwise pass over a matrix. The DBSCAN min_samples sweep is
required (and CI-verified, see ``benchmarks/bench_ext_parallel.py
--quick``) to spend exactly one such pass: :func:`build_neighbor_graph`
folds the eps heuristic and the neighbor graph into a single traversal,
and every sweep point relabels the cached graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import AnalyzerMemoryError, ClusteringError

#: Transient block budget used when the caller sets no explicit budget.
DEFAULT_BLOCK_BYTES = 8 * 1024 * 1024

#: Rows probed up front to seed the neighbor-graph radius cap.
_PROBE_ROWS = 64

#: Working copies a distance block needs per output cell (the matmul
#: output, the assembled block, and numpy temporaries).
_BYTES_PER_CELL = 3 * 8

DISTANCE_PASSES = obs.counter(
    "repro_analyzer_distance_passes_total",
    "Full self-pairwise distance passes over a feature matrix.",
)
_EXTRA_ROWS = obs.counter(
    "repro_analyzer_distance_extra_rows_total",
    "Individual rows recomputed outside a counted full pass "
    "(eps probes and radius-cap revisits).",
)


def reset_pass_counter() -> None:
    """Zero the pass counter (benchmarks and the CI perf-smoke guard)."""
    DISTANCE_PASSES.labels()._reset()
    _EXTRA_ROWS.labels()._reset()


def distance_passes() -> int:
    """Full self-pairwise passes recorded since the last reset."""
    return int(DISTANCE_PASSES.labels().value)


def block_rows(
    n_columns: int, memory_budget_bytes: float | None, what: str = "distance block"
) -> int:
    """Rows per distance block under the budget (>= 1 or raises)."""
    if n_columns <= 0:
        return 1
    budget = DEFAULT_BLOCK_BYTES if memory_budget_bytes is None else memory_budget_bytes
    rows = int(budget // (n_columns * _BYTES_PER_CELL))
    if rows < 1:
        if memory_budget_bytes is not None:
            raise AnalyzerMemoryError(
                f"{what} needs {n_columns * _BYTES_PER_CELL:.0f} B for a single "
                f"row, over the {memory_budget_bytes:.0f} B budget"
            )
        rows = 1
    return min(rows, max(n_columns, 1))


def _sq_block(
    block: np.ndarray,
    other: np.ndarray,
    block_sq: np.ndarray,
    other_sq: np.ndarray,
) -> np.ndarray:
    """Squared distances of one row block against all of ``other``."""
    cross = block @ other.T
    sq = block_sq[:, None] + other_sq[None, :] - 2.0 * cross
    np.maximum(sq, 0.0, out=sq)
    return sq


def pairwise_sq_distances(
    a: np.ndarray,
    b: np.ndarray | None = None,
    *,
    memory_budget_bytes: float | None = None,
) -> np.ndarray:
    """Full (n, m) squared-distance matrix, computed in row blocks.

    ``b=None`` means self-pairwise and counts one distance pass; the
    blocked computation only bounds *transient* memory — the caller
    still owns the O(n m) result.
    """
    if a.ndim != 2:
        raise ClusteringError("pairwise distances need a 2-D matrix")
    other = a if b is None else b
    if other.ndim != 2 or other.shape[1] != a.shape[1]:
        raise ClusteringError("pairwise operands must share their feature dimension")
    a = np.ascontiguousarray(a, dtype=float)
    other = a if b is None else np.ascontiguousarray(other, dtype=float)
    a_sq = np.einsum("ij,ij->i", a, a)
    other_sq = a_sq if b is None else np.einsum("ij,ij->i", other, other)
    out = np.empty((a.shape[0], other.shape[0]))
    rows = block_rows(other.shape[0], memory_budget_bytes)
    for start in range(0, a.shape[0], rows):
        stop = min(start + rows, a.shape[0])
        out[start:stop] = _sq_block(a[start:stop], other, a_sq[start:stop], other_sq)
    if b is None:
        DISTANCE_PASSES.labels().inc()
    return out


def pairwise_distances(
    a: np.ndarray,
    b: np.ndarray | None = None,
    *,
    memory_budget_bytes: float | None = None,
) -> np.ndarray:
    """Euclidean counterpart of :func:`pairwise_sq_distances`."""
    return np.sqrt(pairwise_sq_distances(a, b, memory_budget_bytes=memory_budget_bytes))


def kth_neighbor_distances(
    matrix: np.ndarray, k: int, *, memory_budget_bytes: float | None = None
) -> np.ndarray:
    """Per-row distance to the k-th nearest point (self counts as 0th).

    One blocked pass; O(block x n) transient memory. ``k`` clamps to
    ``n - 1`` exactly as the sort-based heuristic did.
    """
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError("k-distance needs a non-empty 2-D matrix")
    n = matrix.shape[0]
    column = min(max(k, 0), n - 1)
    matrix = np.ascontiguousarray(matrix, dtype=float)
    row_sq = np.einsum("ij,ij->i", matrix, matrix)
    out = np.empty(n)
    rows = block_rows(n, memory_budget_bytes, "k-distance block")
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        sq = _sq_block(matrix[start:stop], matrix, row_sq[start:stop], row_sq)
        if column == 0:
            out[start:stop] = sq.min(axis=1)
        else:
            out[start:stop] = np.partition(sq, column, axis=1)[:, column]
    DISTANCE_PASSES.labels().inc()
    return np.sqrt(out)


@dataclass(frozen=True)
class NeighborGraph:
    """The eps-neighborhood graph of one feature matrix, in CSR form.

    ``indices[indptr[i]:indptr[i + 1]]`` are the points within ``eps``
    of point ``i`` (ascending, self included — the same convention the
    per-point ``flatnonzero`` lists followed). Neighbor *counts* come
    from ``indptr`` alone, so a min_samples sweep never materializes a
    per-point Python list.
    """

    eps: float
    indptr: np.ndarray
    indices: np.ndarray

    @property
    def num_points(self) -> int:
        """Number of points the graph indexes."""
        return len(self.indptr) - 1

    @property
    def counts(self) -> np.ndarray:
        """Neighbors (self included) per point; the core-point test input."""
        return np.diff(self.indptr)

    def neighbors(self, i: int) -> np.ndarray:
        """Neighbor indices of point ``i`` (a CSR slice, no copy)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def memory_bytes(self) -> int:
        """Approximate resident size of the adjacency arrays."""
        return int(self.indptr.nbytes + self.indices.nbytes)


def _probe_cap_sq(
    matrix: np.ndarray, row_sq: np.ndarray, column: int, rows: int
) -> float:
    """Upper-bound estimate of the k-distance spread from a row sample.

    Costs O(probe x n x d) — sublinear in the pass itself — and makes
    cap revisits in :func:`build_neighbor_graph` vanishingly rare.
    """
    n = matrix.shape[0]
    probe = np.unique(np.linspace(0, n - 1, min(n, _PROBE_ROWS)).astype(int))
    cap_sq = 0.0
    for start in range(0, len(probe), rows):
        chunk = probe[start : start + rows]
        sq = _sq_block(matrix[chunk], matrix, row_sq[chunk], row_sq)
        if column == 0:
            kth = sq.min(axis=1)
        else:
            kth = np.partition(sq, column, axis=1)[:, column]
        cap_sq = max(cap_sq, float(kth.max()))
    _EXTRA_ROWS.labels().inc(len(probe))
    return cap_sq


def build_neighbor_graph(
    matrix: np.ndarray,
    eps: float | None = None,
    *,
    neighbor: int = 10,
    percentile: float = 75.0,
    memory_budget_bytes: float | None = None,
) -> NeighborGraph:
    """Neighbor graph — and, when ``eps`` is None, eps itself — in ONE pass.

    With an explicit ``eps`` each block filters directly. With
    ``eps=None`` the same traversal also extracts every row's
    ``neighbor``-th smallest distance (the k-distance heuristic
    :func:`repro.core.analyzer.dbscan.default_eps` uses); rows are
    provisionally stored out to a radius *cap* seeded from a probe
    sample and grown monotonically, and any early row whose cap ended
    below the final eps is recomputed individually (counted under
    ``repro_analyzer_distance_extra_rows_total``, almost always zero).
    The graph honors ``memory_budget_bytes`` for both the transient
    block and the accumulated adjacency.
    """
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError("a neighbor graph needs a non-empty 2-D matrix")
    if eps is not None and eps <= 0.0:
        raise ClusteringError("eps must be positive")
    n = matrix.shape[0]
    matrix = np.ascontiguousarray(matrix, dtype=float)
    row_sq = np.einsum("ij,ij->i", matrix, matrix)
    column = min(max(neighbor, 0), n - 1)
    rows = block_rows(n, memory_budget_bytes, "DBSCAN distance block")

    auto_eps = eps is None
    if auto_eps:
        cap_sq = _probe_cap_sq(matrix, row_sq, column, rows)
        kth_sq = np.empty(n)
    else:
        cap_sq = float(eps) * float(eps)
    neighbor_idx: list[np.ndarray] = []
    neighbor_sq: list[np.ndarray] = [] if auto_eps else None
    stored_radius_sq = np.empty(n) if auto_eps else None
    adjacency_bytes = 0

    with obs.trace("analyzer.neighbor_graph", points=n, block_rows=rows) as span:
        for start in range(0, n, rows):
            stop = min(start + rows, n)
            sq = _sq_block(matrix[start:stop], matrix, row_sq[start:stop], row_sq)
            if auto_eps:
                if column == 0:
                    kth_sq[start:stop] = sq.min(axis=1)
                else:
                    kth_sq[start:stop] = np.partition(sq, column, axis=1)[:, column]
                # The cap only grows; rows stored under a smaller cap
                # remember their radius for the revisit check below.
                cap_sq = max(cap_sq, float(kth_sq[start:stop].max()))
                stored_radius_sq[start:stop] = cap_sq
            for local, row in enumerate(range(start, stop)):
                within = np.flatnonzero(sq[local] <= cap_sq)
                neighbor_idx.append(within.astype(np.int64))
                if auto_eps:
                    neighbor_sq.append(sq[local, within])
                adjacency_bytes += within.nbytes
                if (
                    memory_budget_bytes is not None
                    and adjacency_bytes > memory_budget_bytes
                ):
                    raise AnalyzerMemoryError(
                        f"DBSCAN neighbor graph exceeds the "
                        f"{memory_budget_bytes:.0f} B budget after {row + 1} rows"
                    )
        DISTANCE_PASSES.labels().inc()

        if auto_eps:
            kth = np.sqrt(kth_sq)
            eps = float(np.percentile(kth, percentile))
            if eps <= 0.0:
                eps = 1.0
            eps_sq = eps * eps
            stale = np.flatnonzero(stored_radius_sq < eps_sq)
            for row in stale:
                sq_row = _sq_block(
                    matrix[row : row + 1], matrix, row_sq[row : row + 1], row_sq
                )[0]
                within = np.flatnonzero(sq_row <= eps_sq)
                neighbor_idx[row] = within.astype(np.int64)
                neighbor_sq[row] = sq_row[within]
            if len(stale):
                _EXTRA_ROWS.labels().inc(len(stale))
            # Trim provisional entries beyond the final eps.
            for row in range(n):
                keep = neighbor_sq[row] <= eps_sq
                if not keep.all():
                    neighbor_idx[row] = neighbor_idx[row][keep]
            span.set(eps=eps, revisited=len(stale))

        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([len(ix) for ix in neighbor_idx], out=indptr[1:])
        indices = (
            np.concatenate(neighbor_idx) if n else np.empty(0, dtype=np.int64)
        )
        span.set(edges=int(indptr[-1]))
    return NeighborGraph(eps=float(eps), indptr=indptr, indices=indices)
