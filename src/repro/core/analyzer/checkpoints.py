"""Phase-to-checkpoint association.

Along with phases, TPUPoint records the closest checkpoint to each phase
(Section IV-C): for every phase it finds the stored checkpoint whose
global step is nearest the phase's steps, so an application can be
restarted from that checkpoint and fast-forwarded into the phase rather
than replaying from step zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer.features import global_step_numbers
from repro.core.analyzer.phases import Phase
from repro.core.profiler.record import StepStats
from repro.errors import CheckpointError
from repro.storage.checkpoints import Checkpoint, CheckpointStore


@dataclass(frozen=True)
class PhaseCheckpoint:
    """The nearest checkpoint for one phase."""

    phase_id: int
    checkpoint: Checkpoint
    distance_steps: int  # |checkpoint step - nearest phase step|

    @property
    def exact(self) -> bool:
        """Whether the checkpoint lands inside the phase's step range."""
        return self.distance_steps == 0


def associate_checkpoints(
    phases: list[Phase],
    store: CheckpointStore,
    all_steps: list[StepStats],
) -> dict[int, PhaseCheckpoint]:
    """Find the closest checkpoint for every phase.

    ``all_steps`` must cover the whole profiled run so profile-step
    indices can be translated to TensorFlow global steps (checkpoints are
    tagged with global steps).
    """
    if not len(store):
        raise CheckpointError("no checkpoints were saved during the run")
    to_global = global_step_numbers(all_steps)
    associations: dict[int, PhaseCheckpoint] = {}
    for phase in phases:
        best: PhaseCheckpoint | None = None
        for step in phase.steps:
            global_step = to_global.get(step.step)
            if global_step is None:
                continue
            checkpoint = store.nearest(global_step)
            distance = abs(checkpoint.step - global_step)
            if best is None or distance < best.distance_steps:
                best = PhaseCheckpoint(
                    phase_id=phase.phase_id, checkpoint=checkpoint, distance_steps=distance
                )
        if best is None:
            raise CheckpointError(
                f"phase {phase.phase_id} has no steps with known global steps"
            )
        associations[phase.phase_id] = best
    return associations


def fast_forward_cost_us(
    association: PhaseCheckpoint, store: CheckpointStore
) -> float:
    """Simulated cost of restoring the phase's checkpoint.

    This is the price of fast-forwarding to the phase, to be compared
    with replaying all steps from zero.
    """
    return store.restore_time_us(association.checkpoint)
