"""TPUPoint-Analyzer: post-execution phase detection and reporting."""

from repro.core.analyzer.analyzer import (
    AnalysisResult,
    AnalyzerMemoryError,
    TPUPointAnalyzer,
)
from repro.core.analyzer.bic import bic_score, choose_k_bic
from repro.core.analyzer.checkpoints import (
    PhaseCheckpoint,
    associate_checkpoints,
    fast_forward_cost_us,
)
from repro.core.analyzer.cache import AnalysisCache, matrix_key
from repro.core.analyzer.coverage import CoverageReport, coverage
from repro.core.analyzer.csvexport import write_operator_csv, write_phase_csv
from repro.core.analyzer.dbscan import (
    MIN_SAMPLES_SWEEP,
    DbscanResult,
    dbscan,
    dbscan_from_graph,
    default_eps,
    sweep_min_samples,
)
from repro.core.analyzer.distance import (
    NeighborGraph,
    build_neighbor_graph,
    distance_passes,
    kth_neighbor_distances,
    pairwise_distances,
    pairwise_sq_distances,
    reset_pass_counter,
)
from repro.core.analyzer.elbow import elbow_value, find_elbow
from repro.core.analyzer.features import (
    FeatureMatrix,
    build_features,
    global_step_numbers,
    merge_records,
)
from repro.core.analyzer.kmeans import K_SWEEP, KMeansResult, kmeans, sweep_k
from repro.core.analyzer.ols import (
    DEFAULT_SIMILARITY_THRESHOLD,
    OnlineLinearScan,
    ols_labels,
    step_similarity,
    sweep_thresholds,
)
from repro.core.analyzer.operators import (
    TopOperatorRow,
    appearance_totals,
    top_operators_of_longest_phase,
)
from repro.core.analyzer.pca import PCA
from repro.core.analyzer.phases import Phase, build_phases, longest_phase
from repro.core.analyzer.streaming import (
    MiniBatchKMeans,
    PhaseBoundary,
    StreamingAnalysis,
    StreamingAnalyzer,
    StreamingConfig,
    StreamingPhase,
)
from repro.core.analyzer.visualize import chrome_trace, write_chrome_trace

__all__ = [
    "DEFAULT_SIMILARITY_THRESHOLD",
    "K_SWEEP",
    "MIN_SAMPLES_SWEEP",
    "AnalysisCache",
    "AnalysisResult",
    "AnalyzerMemoryError",
    "CoverageReport",
    "DbscanResult",
    "FeatureMatrix",
    "KMeansResult",
    "MiniBatchKMeans",
    "NeighborGraph",
    "OnlineLinearScan",
    "PCA",
    "Phase",
    "PhaseBoundary",
    "PhaseCheckpoint",
    "StreamingAnalysis",
    "StreamingAnalyzer",
    "StreamingConfig",
    "StreamingPhase",
    "TPUPointAnalyzer",
    "TopOperatorRow",
    "appearance_totals",
    "bic_score",
    "choose_k_bic",
    "associate_checkpoints",
    "build_features",
    "build_neighbor_graph",
    "build_phases",
    "chrome_trace",
    "coverage",
    "dbscan",
    "dbscan_from_graph",
    "default_eps",
    "distance_passes",
    "elbow_value",
    "fast_forward_cost_us",
    "find_elbow",
    "global_step_numbers",
    "kmeans",
    "kth_neighbor_distances",
    "longest_phase",
    "matrix_key",
    "merge_records",
    "ols_labels",
    "pairwise_distances",
    "pairwise_sq_distances",
    "reset_pass_counter",
    "step_similarity",
    "sweep_k",
    "sweep_min_samples",
    "sweep_thresholds",
    "top_operators_of_longest_phase",
    "write_chrome_trace",
    "write_operator_csv",
    "write_phase_csv",
]
