"""chrome://tracing visualization export.

TPUPoint-Analyzer writes a JSON file compatible with Chrome's event
profiling tool (Section IV-B, Figure 3): one track shows the profile
records ("Profile Breakdown") and a second shows the detected phases
("Phase Breakdown"), each phase expanding over the profile records it
summarizes. Complete events (``ph: "X"``) with microsecond timestamps
follow the Trace Event Format, so the file loads directly in
chrome://tracing or Perfetto.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.analyzer.phases import Phase
from repro.core.profiler.record import ProfileRecord

_PID = 1
_PROFILE_TID = 1
_PHASE_TID = 2


def _metadata_events() -> list[dict]:
    return [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "TPUPoint-Analyzer"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _PROFILE_TID,
            "args": {"name": "Profile Breakdown"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _PHASE_TID,
            "args": {"name": "Phase Breakdown"},
        },
    ]


def _counter_events(phases: list[Phase]) -> list[dict]:
    """Per-step counter tracks: TPU idle fraction and MXU FLOPs.

    Rendered as counter events (``ph: "C"``) so chrome://tracing draws
    them as area charts under the phase track.
    """
    events: list[dict] = []
    steps = sorted(
        (step for phase in phases for step in phase.steps), key=lambda s: s.start_us
    )
    for step in steps:
        elapsed = step.elapsed_us
        if elapsed <= 0:
            continue
        events.append(
            {
                "name": "TPU idle %",
                "ph": "C",
                "pid": _PID,
                "ts": step.start_us,
                "args": {"idle": round(100.0 * step.tpu_idle_us / elapsed, 2)},
            }
        )
        events.append(
            {
                "name": "MXU GFLOP/s",
                "ph": "C",
                "pid": _PID,
                "ts": step.start_us,
                "args": {"gflops": round(step.mxu_flops / elapsed / 1e3, 2)},
            }
        )
    return events


def chrome_trace(records: list[ProfileRecord], phases: list[Phase]) -> dict:
    """Build the trace dictionary for records plus detected phases."""
    events = _metadata_events()
    for record in records:
        duration = max(record.window_end_us - record.window_start_us, 1.0)
        events.append(
            {
                "name": f"profile {record.index}",
                "ph": "X",
                "pid": _PID,
                "tid": _PROFILE_TID,
                "ts": record.window_start_us,
                "dur": duration,
                "args": {
                    "steps": record.num_steps,
                    "truncated": record.truncated,
                },
            }
        )
    for rank, phase in enumerate(phases):
        top = phase.top_operators(k=5)
        events.append(
            {
                "name": f"phase {phase.phase_id}",
                "ph": "X",
                "pid": _PID,
                "tid": _PHASE_TID,
                "ts": phase.start_us,
                "dur": max(phase.end_us - phase.start_us, 1.0),
                "args": {
                    "rank_by_duration": rank,
                    "steps": phase.num_steps,
                    "duration_us": phase.total_duration_us,
                    "idle_fraction": round(phase.idle_fraction, 4),
                    "top_operators": [stats.name for stats in top],
                },
            }
        )
    events.extend(_counter_events(phases))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path, records: list[ProfileRecord], phases: list[Phase]
) -> Path:
    """Write the chrome://tracing JSON file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records, phases), handle, indent=2)
    return path
