"""Elbow-method knee detection.

The analyzer cuts off clustering "when improvement stops increasing
significantly" (Section IV-A): for k-means it minimizes the sum of
squared distances while maximizing k; for DBSCAN it minimizes the noise
ratio while maximizing the minimum sample count. Both are knee-finding
problems on a monotone-ish curve; the implementation uses the standard
maximum-distance-to-chord rule, which needs no tuning parameter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalyzerError


def find_elbow(xs: list[float], ys: list[float]) -> int:
    """Index of the elbow of the curve ``(xs, ys)``.

    Draws the chord from the first to the last point and returns the
    index with the maximum perpendicular distance to it. For flat or
    two-point curves the first index is the (degenerate) elbow.
    """
    if len(xs) != len(ys):
        raise AnalyzerError("xs and ys must have equal length")
    if not xs:
        raise AnalyzerError("cannot find the elbow of an empty curve")
    if len(xs) <= 2:
        return 0
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    # Normalize both axes so the chord distance is scale-free.
    x_span = x[-1] - x[0]
    y_span = y.max() - y.min()
    if x_span == 0.0:
        raise AnalyzerError("xs must not be constant")
    xn = (x - x[0]) / x_span
    yn = (y - y.min()) / y_span if y_span else np.zeros_like(y)
    # Distance from each point to the chord between endpoints.
    x0, y0 = xn[0], yn[0]
    x1, y1 = xn[-1], yn[-1]
    numerator = np.abs((y1 - y0) * xn - (x1 - x0) * yn + x1 * y0 - y1 * x0)
    denominator = float(np.hypot(y1 - y0, x1 - x0))
    if denominator == 0.0:
        return 0
    distances = numerator / denominator
    return int(distances.argmax())


def elbow_value(xs: list[float], ys: list[float]) -> float:
    """The x value at the elbow (convenience wrapper)."""
    return xs[find_elbow(xs, ys)]
