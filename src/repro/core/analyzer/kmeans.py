"""k-means clustering, implemented from scratch (Lloyd + k-means++).

TPUPoint-Analyzer runs k-means for k = 1..15 on the PCA-reduced step
vectors and picks k with the elbow method on the sum of squared distances
to centroids (Section IV-A), mirroring SimPoint's methodology with the
elbow heuristic replacing the BIC.

The assignment step uses the blocked shared distance kernel
(:mod:`repro.core.analyzer.distance`), and the sweep/restart fan-out
runs on :class:`repro.parallel.WorkerPool`: every (k, restart) task
draws from its own named RNG substream, so any worker count — including
the serial inline pool — produces bit-identical labels and inertia.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analyzer.distance import pairwise_sq_distances
from repro.errors import ClusteringError
from repro.parallel import WorkerPool, task_rng

#: The paper's k sweep: k = 1..15 (Section IV-A).
K_SWEEP = range(1, 16)

DEFAULT_N_INIT = 4


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run."""

    k: int
    labels: np.ndarray
    centers: np.ndarray
    inertia: float  # sum of squared distances of samples to their centers
    iterations: int


def _kmeanspp_init(
    matrix: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared distance."""
    n = matrix.shape[0]
    centers = np.empty((k, matrix.shape[1]))
    first = int(rng.integers(n))
    centers[0] = matrix[first]
    closest_sq = ((matrix - centers[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All points coincide with chosen centers; reuse any point.
            centers[index:] = matrix[first]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n, p=probabilities))
        centers[index] = matrix[choice]
        distance_sq = ((matrix - centers[index]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    return centers


def restart_key(k: int, restart: int) -> str:
    """The RNG-substream name of one (k, restart) task.

    Naming the stream by task identity — never by execution order — is
    what keeps the parallel sweep bit-identical to the serial one.
    """
    return f"analyzer.kmeans/k={k}/init={restart}"


def kmeans(
    matrix: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    n_init: int = DEFAULT_N_INIT,
    *,
    seed: int | None = None,
    pool: WorkerPool | None = None,
) -> KMeansResult:
    """Cluster rows of ``matrix`` into ``k`` groups.

    Runs ``n_init`` independent k-means++ seedings and keeps the lowest
    inertia, so the SSD-vs-k curve stays monotone enough for the elbow
    method. Passing ``rng`` preserves the legacy behaviour of restarts
    consuming one shared sequential stream; passing ``seed`` gives each
    restart its own derived substream (:func:`restart_key`) and lets the
    restarts fan out over ``pool`` with identical results.
    """
    if n_init <= 0:
        raise ClusteringError("n_init must be positive")
    if seed is not None:
        fits = _fit_tasks(
            matrix, [(k, i) for i in range(n_init)], seed, pool, max_iterations, tolerance
        )
        return _best_of(fits)
    rng = rng or np.random.default_rng(0)
    best: KMeansResult | None = None
    for _ in range(n_init):
        candidate = _kmeans_once(matrix, k, rng, max_iterations, tolerance)
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    assert best is not None
    return best


def _best_of(fits: list[KMeansResult]) -> KMeansResult:
    """Lowest inertia wins; ties break to the earliest restart.

    Matches the serial ``<`` reduction, so the parallel path picks the
    same winner.
    """
    best = fits[0]
    for candidate in fits[1:]:
        if candidate.inertia < best.inertia:
            best = candidate
    return best


def _fit_tasks(
    matrix: np.ndarray,
    tasks: list[tuple[int, int]],
    seed: int,
    pool: WorkerPool | None,
    max_iterations: int,
    tolerance: float,
) -> list[KMeansResult]:
    """Run (k, restart) fits, each on its own RNG substream, in order."""

    def fit(task: tuple[int, int]) -> KMeansResult:
        k, restart = task
        rng = task_rng(seed, restart_key(k, restart))
        return _kmeans_once(matrix, k, rng, max_iterations, tolerance)

    if pool is not None:
        return pool.map(fit, tasks)
    return [fit(task) for task in tasks]


def _kmeans_once(
    matrix: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int,
    tolerance: float,
) -> KMeansResult:
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError("k-means needs a non-empty 2-D matrix")
    n = matrix.shape[0]
    if k <= 0:
        raise ClusteringError("k must be positive")
    if k > n:
        raise ClusteringError(f"k={k} exceeds the number of samples ({n})")
    if max_iterations <= 0:
        raise ClusteringError("max_iterations must be positive")

    centers = _kmeanspp_init(matrix, k, rng)
    labels = np.zeros(n, dtype=int)
    for iteration in range(1, max_iterations + 1):
        # Assignment step (blocked Gram kernel, O(block x k) transient).
        distances = pairwise_sq_distances(matrix, centers)
        labels = distances.argmin(axis=1)
        # Update step.
        new_centers = centers.copy()
        for cluster in range(k):
            members = matrix[labels == cluster]
            if len(members):
                new_centers[cluster] = members.mean(axis=0)
        shift = float(((new_centers - centers) ** 2).sum())
        centers = new_centers
        if shift <= tolerance:
            break
    distances = pairwise_sq_distances(matrix, centers)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(k=k, labels=labels, centers=centers, inertia=inertia, iterations=iteration)


def sweep_k(
    matrix: np.ndarray,
    k_values: range | list[int] = K_SWEEP,
    rng: np.random.Generator | None = None,
    *,
    seed: int | None = None,
    pool: WorkerPool | None = None,
    n_init: int = DEFAULT_N_INIT,
) -> dict[int, KMeansResult]:
    """Run k-means for every k, as the analyzer's stage 2 prescribes.

    With ``seed`` the whole (k x restart) grid becomes one flat task
    list over ``pool`` — maximal fan-out — reduced per k by
    :func:`_best_of`; results are identical at any worker count.
    """
    feasible = [k for k in k_values if k <= matrix.shape[0]]
    if not feasible:
        raise ClusteringError("no feasible k values for the sample count")
    if seed is not None:
        tasks = [(k, i) for k in feasible for i in range(n_init)]
        fits = _fit_tasks(matrix, tasks, seed, pool, 300, 1e-6)
        results: dict[int, KMeansResult] = {}
        for k in feasible:
            per_k = [fit for (task_k, _), fit in zip(tasks, fits) if task_k == k]
            results[k] = _best_of(per_k)
        return results
    rng = rng or np.random.default_rng(0)
    results = {}
    for k in feasible:
        results[k] = kmeans(matrix, k, rng, n_init=n_init)
    return results
