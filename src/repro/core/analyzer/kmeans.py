"""k-means clustering, implemented from scratch (Lloyd + k-means++).

TPUPoint-Analyzer runs k-means for k = 1..15 on the PCA-reduced step
vectors and picks k with the elbow method on the sum of squared distances
to centroids (Section IV-A), mirroring SimPoint's methodology with the
elbow heuristic replacing the BIC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run."""

    k: int
    labels: np.ndarray
    centers: np.ndarray
    inertia: float  # sum of squared distances of samples to their centers
    iterations: int


def _kmeanspp_init(
    matrix: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared distance."""
    n = matrix.shape[0]
    centers = np.empty((k, matrix.shape[1]))
    first = int(rng.integers(n))
    centers[0] = matrix[first]
    closest_sq = ((matrix - centers[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All points coincide with chosen centers; reuse any point.
            centers[index:] = matrix[first]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n, p=probabilities))
        centers[index] = matrix[choice]
        distance_sq = ((matrix - centers[index]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    return centers


def kmeans(
    matrix: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    n_init: int = 4,
) -> KMeansResult:
    """Cluster rows of ``matrix`` into ``k`` groups.

    Runs ``n_init`` independent k-means++ seedings and keeps the lowest
    inertia, so the SSD-vs-k curve stays monotone enough for the elbow
    method.
    """
    if n_init <= 0:
        raise ClusteringError("n_init must be positive")
    rng = rng or np.random.default_rng(0)
    best: KMeansResult | None = None
    for _ in range(n_init):
        candidate = _kmeans_once(matrix, k, rng, max_iterations, tolerance)
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    assert best is not None
    return best


def _kmeans_once(
    matrix: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int,
    tolerance: float,
) -> KMeansResult:
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError("k-means needs a non-empty 2-D matrix")
    n = matrix.shape[0]
    if k <= 0:
        raise ClusteringError("k must be positive")
    if k > n:
        raise ClusteringError(f"k={k} exceeds the number of samples ({n})")
    if max_iterations <= 0:
        raise ClusteringError("max_iterations must be positive")

    centers = _kmeanspp_init(matrix, k, rng)
    labels = np.zeros(n, dtype=int)
    for iteration in range(1, max_iterations + 1):
        # Assignment step.
        distances = ((matrix[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        # Update step.
        new_centers = centers.copy()
        for cluster in range(k):
            members = matrix[labels == cluster]
            if len(members):
                new_centers[cluster] = members.mean(axis=0)
        shift = float(((new_centers - centers) ** 2).sum())
        centers = new_centers
        if shift <= tolerance:
            break
    distances = ((matrix[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(k=k, labels=labels, centers=centers, inertia=inertia, iterations=iteration)


def sweep_k(
    matrix: np.ndarray,
    k_values: range | list[int] = range(1, 16),
    rng: np.random.Generator | None = None,
) -> dict[int, KMeansResult]:
    """Run k-means for every k, as the analyzer's stage 2 prescribes."""
    rng = rng or np.random.default_rng(0)
    results: dict[int, KMeansResult] = {}
    for k in k_values:
        if k > matrix.shape[0]:
            break
        results[k] = kmeans(matrix, k, rng)
    if not results:
        raise ClusteringError("no feasible k values for the sample count")
    return results
