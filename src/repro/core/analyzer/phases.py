"""Program phases.

A phase groups the steps a detection algorithm judged similar. For OLS
the labels are contiguous runs; for k-means/DBSCAN a phase is a cluster
whose steps may be scattered across the timeline (DBSCAN's unlabeled
noise points count as one more phase, as Section VI-A does when
measuring coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.profiler.record import OperatorStats, StepStats
from repro.errors import AnalyzerError
from repro.runtime.events import DeviceKind


@dataclass
class Phase:
    """One detected program phase."""

    phase_id: int
    steps: list[StepStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.steps:
            raise AnalyzerError(f"phase {self.phase_id} has no steps")

    @property
    def num_steps(self) -> int:
        """Number of steps assigned to the phase."""
        return len(self.steps)

    @property
    def step_numbers(self) -> list[int]:
        """Global step numbers of the phase's members, ascending."""
        return [step.step for step in self.steps]

    @property
    def start_us(self) -> float:
        """Wall-clock start of the earliest member step."""
        return min(step.start_us for step in self.steps)

    @property
    def end_us(self) -> float:
        """Wall-clock end of the latest member step."""
        return max(step.end_us for step in self.steps)

    @property
    def total_duration_us(self) -> float:
        """Execution time covered by the phase (sum of its steps)."""
        return sum(step.elapsed_us for step in self.steps)

    @property
    def idle_fraction(self) -> float:
        """TPU idle fraction within the phase."""
        total = self.total_duration_us
        if total <= 0:
            return 0.0
        return min(sum(step.tpu_idle_us for step in self.steps) / total, 1.0)

    def operator_totals(self, device: DeviceKind | None = None) -> list[OperatorStats]:
        """Aggregate operator statistics across the phase's steps."""
        totals: dict[tuple[str, str], OperatorStats] = {}
        for step in self.steps:
            for key, stats in step.operators.items():
                if device is not None and stats.device is not device:
                    continue
                existing = totals.get(key)
                if existing is None:
                    totals[key] = OperatorStats(
                        name=stats.name,
                        device=stats.device,
                        count=stats.count,
                        total_duration_us=stats.total_duration_us,
                    )
                else:
                    existing.merge(stats)
        return sorted(totals.values(), key=lambda s: -s.total_duration_us)

    def top_operators(self, k: int = 5, device: DeviceKind | None = None) -> list[OperatorStats]:
        """The k most time-consuming operators in this phase."""
        return self.operator_totals(device)[:k]

    def representative_step(self) -> StepStats:
        """The step closest to the phase's mean behaviour.

        SimPoint simulates one representative point per phase; the same
        idea applies here for fast-forward targets: the step whose
        per-operator duration vector is nearest (L2) to the phase mean.
        """
        keys = sorted({key for step in self.steps for key in step.operators})
        index = {key: i for i, key in enumerate(keys)}
        vectors = np.zeros((len(self.steps), len(keys)))
        for row, step in enumerate(self.steps):
            for key, stats in step.operators.items():
                vectors[row, index[key]] = stats.total_duration_us
        mean = vectors.mean(axis=0)
        distances = ((vectors - mean) ** 2).sum(axis=1)
        return self.steps[int(distances.argmin())]


def build_phases(steps: list[StepStats], labels: np.ndarray | list[int]) -> list[Phase]:
    """Group steps by label into phases, ordered by descending duration.

    Labels may be any integers (DBSCAN noise is -1); each distinct label
    becomes one phase.
    """
    labels = np.asarray(labels)
    if len(labels) != len(steps):
        raise AnalyzerError(
            f"got {len(labels)} labels for {len(steps)} steps"
        )
    grouped: dict[int, list[StepStats]] = {}
    for step, label in zip(steps, labels.tolist()):
        grouped.setdefault(int(label), []).append(step)
    phases = [Phase(phase_id=label, steps=group) for label, group in grouped.items()]
    phases.sort(key=lambda phase: -phase.total_duration_us)
    return phases


def longest_phase(phases: list[Phase]) -> Phase:
    """The most time-consuming phase (Table II analyzes this one)."""
    if not phases:
        raise AnalyzerError("no phases")
    return max(phases, key=lambda phase: phase.total_duration_us)
