"""Step aggregation and frequency-vector features.

TPUPoint-Analyzer's first stage (all three algorithms share it): extract
records from the statistical profiles, aggregate them by TPU step number,
and represent each step as a frequency vector whose dimensions are the
TensorFlow operations with their accumulated invocation counts and total
durations (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profiler.record import ProfileRecord, StepStats
from repro.errors import AnalyzerError
from repro.runtime.events import StepKind


def merge_records(records: list[ProfileRecord]) -> list[StepStats]:
    """Merge all records into one per-step view, ordered by step number.

    A step split across two profile windows contributes one merged entry.
    """
    merged: dict[int, StepStats] = {}
    for record in records:
        for step_number, stats in record.steps.items():
            existing = merged.get(step_number)
            if existing is None:
                fresh = StepStats(step=step_number)
                fresh.merge(stats)
                merged[step_number] = fresh
            else:
                existing.merge(stats)
    return [merged[step] for step in sorted(merged)]


def global_step_numbers(steps: list[StepStats]) -> dict[int, int]:
    """Map profile-step index → TensorFlow global (train) step.

    Non-train steps map to the number of train steps completed before
    them, which is exactly the step a checkpoint written there carries.
    """
    mapping: dict[int, int] = {}
    completed = 0
    for stats in steps:
        if stats.kind is StepKind.TRAIN:
            completed += 1
        mapping[stats.step] = completed
    return mapping


@dataclass
class FeatureMatrix:
    """Frequency vectors for a sequence of steps.

    Attributes:
        steps: the underlying per-step statistics, in step order.
        vocabulary: (operator name, device) per feature column pair.
        durations: (n_steps, n_ops) accumulated durations in us.
        counts: (n_steps, n_ops) invocation counts.
    """

    steps: list[StepStats]
    vocabulary: list[tuple[str, str]]
    durations: np.ndarray
    counts: np.ndarray

    @property
    def num_steps(self) -> int:
        """Number of step rows in the matrix."""
        return len(self.steps)

    @property
    def num_operators(self) -> int:
        """Number of operator columns in the matrix."""
        return len(self.vocabulary)

    def combined(self, standardize: bool = True) -> np.ndarray:
        """The [durations | counts] matrix, optionally standardized.

        Standardization (zero mean, unit variance per column) keeps the
        long-duration operators from drowning out the counts.
        """
        matrix = np.hstack([self.durations, self.counts]).astype(float)
        if not standardize:
            return matrix
        mean = matrix.mean(axis=0, keepdims=True)
        std = matrix.std(axis=0, keepdims=True)
        std[std == 0.0] = 1.0
        return (matrix - mean) / std

    def memory_bytes(self) -> float:
        """Approximate working-set size of the feature representation."""
        return float(self.durations.nbytes + self.counts.nbytes)


def build_features(steps: list[StepStats]) -> FeatureMatrix:
    """Build the frequency-vector representation for a list of steps."""
    if not steps:
        raise AnalyzerError("cannot build features from zero steps")
    vocabulary = sorted({key for stats in steps for key in stats.operators})
    index = {key: column for column, key in enumerate(vocabulary)}
    durations = np.zeros((len(steps), len(vocabulary)))
    counts = np.zeros((len(steps), len(vocabulary)))
    for row, stats in enumerate(steps):
        for key, op_stats in stats.operators.items():
            column = index[key]
            durations[row, column] = op_stats.total_duration_us
            counts[row, column] = op_stats.count
    return FeatureMatrix(
        steps=list(steps), vocabulary=list(vocabulary), durations=durations, counts=counts
    )
