"""Execution-time coverage of detected phases.

Observation 2 of the paper: the 3 longest phases cover most (≥95% at the
70% OLS threshold) of each workload's execution time. These helpers
compute the per-phase and cumulative coverage shown in Figures 7-9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer.phases import Phase
from repro.errors import AnalyzerError


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of total execution time by the longest phases."""

    total_duration_us: float
    phase_durations_us: tuple[float, ...]  # descending

    @property
    def fractions(self) -> tuple[float, ...]:
        """Per-phase fraction of total execution time, descending."""
        if self.total_duration_us <= 0:
            return tuple(0.0 for _ in self.phase_durations_us)
        return tuple(d / self.total_duration_us for d in self.phase_durations_us)

    def top(self, n: int = 3) -> float:
        """Cumulative fraction covered by the n longest phases."""
        return sum(self.fractions[:n])


def coverage(phases: list[Phase], total_duration_us: float | None = None) -> CoverageReport:
    """Coverage report over a set of phases.

    ``total_duration_us`` defaults to the sum over all phases (every step
    belongs to exactly one phase, so this is the profiled execution time).
    """
    if not phases:
        raise AnalyzerError("coverage needs at least one phase")
    durations = sorted((phase.total_duration_us for phase in phases), reverse=True)
    total = total_duration_us if total_duration_us is not None else sum(durations)
    if total < 0:
        raise AnalyzerError("total duration must be non-negative")
    return CoverageReport(total_duration_us=total, phase_durations_us=tuple(durations))
