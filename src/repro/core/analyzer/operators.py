"""Per-phase top-operator tables.

Table II of the paper lists, for each workload and each detection
algorithm, the five most time-consuming operators of the most
time-consuming phase, separately for the host and the TPU, plus totals of
how often each operator appears across configurations. These helpers
compute those rows from analysis results.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.analyzer.phases import Phase, longest_phase
from repro.runtime.events import DeviceKind


@dataclass(frozen=True)
class TopOperatorRow:
    """Top-k operators of one phase on one device."""

    device: DeviceKind
    operators: tuple[str, ...]
    durations_us: tuple[float, ...]


def top_operators_of_longest_phase(
    phases: list[Phase], k: int = 5
) -> dict[DeviceKind, TopOperatorRow]:
    """The paper's Table II cell: top-k host and TPU ops, longest phase."""
    phase = longest_phase(phases)
    rows: dict[DeviceKind, TopOperatorRow] = {}
    for device in (DeviceKind.HOST, DeviceKind.TPU):
        top = phase.top_operators(k=k, device=device)
        rows[device] = TopOperatorRow(
            device=device,
            operators=tuple(stats.name for stats in top),
            durations_us=tuple(stats.total_duration_us for stats in top),
        )
    return rows


def appearance_totals(
    cells: list[dict[DeviceKind, TopOperatorRow]]
) -> dict[DeviceKind, Counter]:
    """Count operator appearances across many Table II cells.

    This produces the paper's "Total TPUv2"/"Total TPUv3" columns: how
    many (workload, algorithm) configurations put each operator in the
    top five.
    """
    totals: dict[DeviceKind, Counter] = {
        DeviceKind.HOST: Counter(),
        DeviceKind.TPU: Counter(),
    }
    for cell in cells:
        for device, row in cell.items():
            totals[device].update(row.operators)
    return totals
