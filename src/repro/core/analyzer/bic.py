"""Bayesian information criterion for k selection.

SimPoint — the direct inspiration for TPUPoint-Analyzer — scores k-means
clusterings with the BIC (Pelleg & Moore's X-means formulation) instead
of the elbow heuristic the paper adopts. This module implements that
alternative so the two criteria can be compared on the same sweeps (see
``bench_ablation_bic.py``): the BIC of a clustering under an identical
spherical-Gaussian model, penalized by the free-parameter count.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.analyzer.kmeans import KMeansResult
from repro.errors import AnalyzerError

# Relative variance floor: profiled steps contain near-duplicate points
# (consecutive training steps), so the maximum-likelihood variance
# collapses toward zero as k grows and the unfloored likelihood diverges.
# Flooring at a fraction of the data's global variance keeps the BIC's
# complexity penalty meaningful — the standard X-means guard for
# degenerate data.
_RELATIVE_VARIANCE_FLOOR = 1e-2


def bic_score(matrix: np.ndarray, result: KMeansResult) -> float:
    """BIC of one k-means clustering (larger is better).

    Uses the X-means log-likelihood under a spherical Gaussian per
    cluster with a shared maximum-likelihood variance, penalized by
    ``p/2 * log(n)`` where ``p`` counts mixture weights, centroid
    coordinates, and the shared variance.
    """
    n, dims = matrix.shape
    k = result.k
    if n == 0:
        raise AnalyzerError("BIC needs at least one sample")
    if k >= n:
        # A centroid per point: likelihood degenerates; score it -inf so
        # the selection never picks it.
        return float("-inf")

    global_variance = float(matrix.var(axis=0).mean())
    floor = max(global_variance * _RELATIVE_VARIANCE_FLOOR, 1e-12)
    variance = max(result.inertia / (dims * (n - k)), floor)
    log_likelihood = 0.0
    for cluster in range(k):
        size = int((result.labels == cluster).sum())
        if size == 0:
            continue
        log_likelihood += (
            size * math.log(size / n)
            - size * dims / 2.0 * math.log(2.0 * math.pi * variance)
            - (size - 1) * dims / 2.0
        )
    free_parameters = (k - 1) + dims * k + 1
    return log_likelihood - free_parameters / 2.0 * math.log(n)


def choose_k_bic(
    matrix: np.ndarray,
    results: dict[int, KMeansResult],
    threshold: float = 0.9,
) -> int:
    """SimPoint's k-selection rule over BIC scores.

    SimPoint does not take the arg-max: it picks the *smallest* k whose
    score reaches ``threshold`` of the best score after min-max
    normalization, trading a little likelihood for fewer simulation
    points. ``threshold=1.0`` degenerates to the arg-max.
    """
    if not results:
        raise AnalyzerError("choose_k_bic needs at least one clustering")
    if not 0.0 < threshold <= 1.0:
        raise AnalyzerError("threshold must be in (0, 1]")
    scores = {k: bic_score(matrix, result) for k, result in results.items()}
    finite = {k: s for k, s in scores.items() if s != float("-inf")}
    if not finite:
        return min(scores)
    low = min(finite.values())
    high = max(finite.values())
    if high == low:
        return min(finite)
    for k in sorted(finite):
        if (finite[k] - low) / (high - low) >= threshold:
            return k
    return max(sorted(finite), key=lambda k: finite[k])  # pragma: no cover
