"""Streaming phase analysis: online PCA + mini-batch k-means.

The batch :class:`~repro.core.analyzer.analyzer.TPUPointAnalyzer`
materializes the full per-step feature matrix before it can cluster —
O(steps x vocabulary) memory, available only after the run ends. This
module folds each released profile window in *as it arrives* and keeps
state that does not grow with the step count:

* a **signature table** deduplicating identical step feature rows (two
  steps whose per-operator (count, duration) pairs match produce the
  same row, and long runs are dominated by repeats — the same property
  the paper's phases rest on), with one retained representative step
  and a multiplicity per signature;
* **run-length segments** of consecutive same-signature steps carrying
  the per-run metadata aggregates (duration, idle, MXU flops) that
  phase tables are built from;
* **streaming moment accumulators** (per-column sum and sum of squares,
  folded per step) for the standardization, and the signature table's
  multiplicity-weighted second moments for the covariance the sketch
  PCA eigendecomposes — the incremental-covariance update collapsed
  over duplicates so a step costs O(ops), not O(vocabulary^2);
* a seeded **mini-batch k-means** folding each released window as one
  mini-batch, for provisional live labels between full analyses.

Per step that is O(ops log ops) time and O(1) *new* memory unless the
step introduces a new signature or operator. State is therefore
O(distinct signatures + runs + vocabulary) — flat for phase-structured
workloads of any length. An adversarial stream where every step is
distinct degrades to O(steps), the same bound as batch (documented in
``docs/performance.md``).

Two analysis modes:

* ``exact`` (the default): at analysis time the folded sequence is
  reconstructed *by reference* from the signature table (a transient
  O(steps) list of pointers, not a copy of the data) and pushed through
  the very same ``build_features -> PCA -> kmeans`` code path, with the
  same seed, as the batch analyzer — so labels are **bit-identical** to
  ``TPUPointAnalyzer.kmeans_phases()`` by construction (the property
  test in ``tests/property/test_prop_streaming.py`` proves it).
* ``sketch``: never materializes anything O(steps) — standardization
  comes from the streaming moments, PCA from the eigendecomposition of
  the deduplicated covariance, clustering from a multiplicity-weighted
  k-means over the signature rows. Deterministic and seeded, equal to
  batch up to floating-point accumulation order (tolerance-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import rng as rng_mod
from repro.core.analyzer.kmeans import DEFAULT_N_INIT, K_SWEEP
from repro.core.analyzer.kmeans import kmeans as batch_kmeans
from repro.core.analyzer.elbow import find_elbow
from repro.core.analyzer.features import build_features
from repro.core.analyzer.pca import PCA
from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.core.profiler.streaming import StepStream
from repro.errors import AnalyzerError
from repro.runtime.events import DeviceKind

#: Centroid budget of the live mini-batch clusterer (provisional labels).
DEFAULT_MINIBATCH_CLUSTERS = 8

STREAMING_MODES = ("exact", "sketch")


@dataclass(frozen=True)
class StreamingConfig:
    """Configuration of one :class:`StreamingAnalyzer`.

    The defaults mirror the batch analyzer's default k-means pipeline
    (``max_pca_dims=100``, elbow-selected k over the paper's sweep,
    seed 0), which is exactly the configuration the exact mode matches
    bit-for-bit.
    """

    mode: str = "exact"
    max_pca_dims: int = 100
    seed: int = 0
    k: int | None = None
    minibatch_clusters: int = DEFAULT_MINIBATCH_CLUSTERS

    def __post_init__(self) -> None:
        if self.mode not in STREAMING_MODES:
            raise AnalyzerError(
                f"unknown streaming mode {self.mode!r}; use exact or sketch"
            )
        if self.max_pca_dims <= 0:
            raise AnalyzerError("max_pca_dims must be positive")
        if self.k is not None and self.k <= 0:
            raise AnalyzerError("k must be positive when set")
        if self.minibatch_clusters <= 0:
            raise AnalyzerError("minibatch_clusters must be positive")


@dataclass
class StreamingPhase:
    """Accumulated statistics of one detected phase."""

    phase_id: int
    num_steps: int = 0
    first_step: int = -1
    last_step: int = -1
    duration_us: float = 0.0
    tpu_idle_us: float = 0.0
    mxu_flops: float = 0.0
    operators: dict[tuple[str, str], OperatorStats] = field(default_factory=dict)

    @property
    def idle_fraction(self) -> float:
        """Fraction of the phase's span the TPU sat idle."""
        if self.duration_us <= 0:
            return 0.0
        return min(self.tpu_idle_us / self.duration_us, 1.0)

    def top_operators(
        self, k: int = 5, device: DeviceKind | None = None
    ) -> list[OperatorStats]:
        """The k most time-consuming operators attributed to this phase."""
        totals = [
            stats
            for stats in self.operators.values()
            if device is None or stats.device is device
        ]
        totals.sort(key=lambda stats: -stats.total_duration_us)
        return totals[:k]


@dataclass(frozen=True)
class PhaseBoundary:
    """One maximal stretch of consecutive steps sharing a phase label."""

    phase_id: int
    start_position: int  # 0-based position in the folded step sequence
    end_position: int  # inclusive
    first_step: int
    last_step: int

    @property
    def num_steps(self) -> int:
        """Steps inside the boundary (inclusive range)."""
        return self.end_position - self.start_position + 1


@dataclass(frozen=True)
class StreamingAnalysis:
    """Outcome of one streaming phase analysis.

    The full-analysis counterpart of the batch
    :class:`~repro.core.analyzer.analyzer.AnalysisResult`: PCA'd
    cluster labels per folded step plus the phase boundaries and the
    per-phase accumulated statistics.
    """

    method: str
    params: dict
    labels: np.ndarray
    phases: list[StreamingPhase]
    boundaries: list[PhaseBoundary]

    @property
    def num_phases(self) -> int:
        """Number of phases in the analysis."""
        return len(self.phases)


@dataclass
class _Run:
    """Consecutive steps sharing one feature signature."""

    uid: int
    first_step: int
    last_step: int
    count: int = 0
    duration_us: float = 0.0
    tpu_idle_us: float = 0.0
    mxu_flops: float = 0.0


class MiniBatchKMeans:
    """Seeded online k-means over raw feature rows.

    Folds one mini-batch (a released profile window's rows) at a time
    with the standard per-center learning-rate update. Centers live in
    the evolving raw feature space and are zero-padded as the operator
    vocabulary grows. Initialization takes the first ``k`` *distinct*
    rows in arrival order, so the whole trajectory is a pure function
    of the stream and the seed — deterministic across replays.
    """

    def __init__(self, k: int = DEFAULT_MINIBATCH_CLUSTERS, seed: int = 0):
        if k <= 0:
            raise AnalyzerError("mini-batch k must be positive")
        self.k = k
        self.seed = seed
        self._rng = rng_mod.stream("analyzer.streaming.minibatch", seed)
        self._centers: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self.batches_folded = 0

    @property
    def num_centers(self) -> int:
        """Number of live cluster centers."""
        return 0 if self._centers is None else self._centers.shape[0]

    def _pad(self, dims: int) -> None:
        if self._centers is not None and self._centers.shape[1] < dims:
            grown = np.zeros((self._centers.shape[0], dims))
            grown[:, : self._centers.shape[1]] = self._centers
            self._centers = grown

    def fold(self, rows: np.ndarray) -> None:
        """Fold one mini-batch of rows (a released window) in."""
        if rows.ndim != 2 or rows.shape[0] == 0:
            return
        self.batches_folded += 1
        dims = rows.shape[1]
        self._pad(dims)
        for row in rows:
            if self._centers is None:
                self._centers = row[np.newaxis, :].copy()
                self._counts = np.ones(1)
                continue
            distances = ((self._centers - row) ** 2).sum(axis=1)
            nearest = int(distances.argmin())
            if self.num_centers < self.k and distances[nearest] > 0.0:
                self._centers = np.vstack([self._centers, row])
                self._counts = np.append(self._counts, 1.0)
                continue
            self._counts[nearest] += 1.0
            eta = 1.0 / self._counts[nearest]
            self._centers[nearest] = (1.0 - eta) * self._centers[nearest] + eta * row

    def assign(self, rows: np.ndarray) -> np.ndarray:
        """Nearest-center label per row (provisional live labels)."""
        if self._centers is None or rows.shape[0] == 0:
            return np.zeros(rows.shape[0], dtype=int)
        padded = rows
        if rows.shape[1] < self._centers.shape[1]:
            padded = np.zeros((rows.shape[0], self._centers.shape[1]))
            padded[:, : rows.shape[1]] = rows
        self._pad(rows.shape[1])
        deltas = padded[:, np.newaxis, :] - self._centers[np.newaxis, :, :]
        return (deltas**2).sum(axis=2).argmin(axis=1)

    def state_bytes(self) -> int:
        """Approximate resident size of the clustering state."""
        if self._centers is None:
            return 64
        return int(self._centers.nbytes + self._counts.nbytes + 64)


def _weighted_kmeans_once(
    matrix: np.ndarray,
    weights: np.ndarray,
    k: int,
    rng,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
) -> tuple[np.ndarray, float]:
    """Weighted Lloyd over deduplicated rows (multiplicity weights)."""
    n = matrix.shape[0]
    centers = np.empty((k, matrix.shape[1]))
    first = int(rng.integers(n))
    centers[0] = matrix[first]
    closest_sq = ((matrix - centers[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        weighted = closest_sq * weights
        total = weighted.sum()
        if total <= 0.0:
            centers[index:] = matrix[first]
            break
        choice = int(rng.choice(n, p=weighted / total))
        centers[index] = matrix[choice]
        distance_sq = ((matrix - centers[index]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    labels = np.zeros(n, dtype=int)
    for _ in range(max_iterations):
        deltas = matrix[:, np.newaxis, :] - centers[np.newaxis, :, :]
        distances = (deltas**2).sum(axis=2)
        labels = distances.argmin(axis=1)
        new_centers = centers.copy()
        for cluster in range(k):
            member_weights = weights[labels == cluster]
            if member_weights.sum() > 0:
                members = matrix[labels == cluster]
                new_centers[cluster] = (
                    members * member_weights[:, np.newaxis]
                ).sum(axis=0) / member_weights.sum()
        shift = float(((new_centers - centers) ** 2).sum())
        centers = new_centers
        if shift <= tolerance:
            break
    deltas = matrix[:, np.newaxis, :] - centers[np.newaxis, :, :]
    distances = (deltas**2).sum(axis=2)
    labels = distances.argmin(axis=1)
    inertia = float((distances[np.arange(n), labels] * weights).sum())
    return labels, inertia


def _weighted_kmeans(
    matrix: np.ndarray,
    weights: np.ndarray,
    k: int,
    seed: int,
    n_init: int = DEFAULT_N_INIT,
) -> tuple[np.ndarray, float]:
    """Best of ``n_init`` seeded weighted fits (lowest weighted inertia)."""
    best: tuple[np.ndarray, float] | None = None
    for restart in range(n_init):
        rng = rng_mod.stream(f"analyzer.streaming/k={k}/init={restart}", seed)
        candidate = _weighted_kmeans_once(matrix, weights, k, rng)
        if best is None or candidate[1] < best[1]:
            best = candidate
    assert best is not None
    return best


@dataclass
class StreamingAnalyzer:
    """Online phase analysis folding released steps as they arrive.

    Feed it either whole records (:meth:`fold_record`, which assembles
    steps through its own :class:`StepStream`) or already-assembled
    steps (:meth:`fold_step`, the ``serve.live`` path) followed by
    :meth:`end_window` per released window. :meth:`analyze` can be
    called at any time — it never consumes or mutates the folded state,
    so live jobs answer full phase analyses mid-run.
    """

    config: StreamingConfig = field(default_factory=StreamingConfig)

    def __post_init__(self) -> None:
        self._stream = StepStream()
        self._signatures: dict[tuple, int] = {}
        self._unique_steps: list[StepStats] = []
        self._unique_counts: list[int] = []
        self._runs: list[_Run] = []
        self._steps_folded = 0
        # Streaming per-column moments (duration / count planes), folded
        # per step: the sketch standardization reads these, never a
        # materialized matrix.
        self._dur_sum: dict[tuple[str, str], float] = {}
        self._dur_sumsq: dict[tuple[str, str], float] = {}
        self._cnt_sum: dict[tuple[str, str], float] = {}
        self._cnt_sumsq: dict[tuple[str, str], float] = {}
        self._minibatch = MiniBatchKMeans(
            k=self.config.minibatch_clusters, seed=self.config.seed
        )
        self._window_uids: list[int] = []

    # --- folding -----------------------------------------------------------

    @property
    def steps_folded(self) -> int:
        """Completed steps folded into the analysis so far."""
        return self._steps_folded

    @property
    def num_signatures(self) -> int:
        """Distinct step feature signatures seen so far."""
        return len(self._unique_steps)

    @property
    def num_runs(self) -> int:
        """Maximal same-signature stretches seen so far."""
        return len(self._runs)

    def fold_record(self, record: ProfileRecord) -> int:
        """Assemble and fold one record; returns steps released by it."""
        folded = 0
        for step in self._stream.submit(record):
            self.fold_step(step)
            folded += 1
        self.end_window()
        return folded

    def finish(self) -> int:
        """Flush the internal assembler (end of stream); returns steps."""
        folded = 0
        for step in self._stream.flush():
            self.fold_step(step)
            folded += 1
        self.end_window()
        return folded

    def fold_step(self, step: StepStats) -> None:
        """Fold one completed step (already assembled) into the state."""
        signature = tuple(
            sorted(
                (key, stats.count, stats.total_duration_us)
                for key, stats in step.operators.items()
            )
        )
        uid = self._signatures.get(signature)
        if uid is None:
            uid = len(self._unique_steps)
            self._signatures[signature] = uid
            self._unique_steps.append(step)
            self._unique_counts.append(1)
        else:
            self._unique_counts[uid] += 1
        if self._runs and self._runs[-1].uid == uid:
            run = self._runs[-1]
            run.last_step = step.step
        else:
            run = _Run(uid=uid, first_step=step.step, last_step=step.step)
            self._runs.append(run)
        run.count += 1
        run.duration_us += step.elapsed_us
        run.tpu_idle_us += step.tpu_idle_us
        run.mxu_flops += step.mxu_flops
        for key, stats in step.operators.items():
            duration = stats.total_duration_us
            count = float(stats.count)
            self._dur_sum[key] = self._dur_sum.get(key, 0.0) + duration
            self._dur_sumsq[key] = self._dur_sumsq.get(key, 0.0) + duration * duration
            self._cnt_sum[key] = self._cnt_sum.get(key, 0.0) + count
            self._cnt_sumsq[key] = self._cnt_sumsq.get(key, 0.0) + count * count
        self._steps_folded += 1
        self._window_uids.append(uid)

    def end_window(self) -> None:
        """Close one released window: fold its rows as a mini-batch."""
        if not self._window_uids:
            return
        vocabulary, column = self._vocabulary()
        rows = np.zeros((len(self._window_uids), 2 * max(len(vocabulary), 1)))
        for position, uid in enumerate(self._window_uids):
            self._fill_row(rows, position, uid, column, len(vocabulary))
        self._minibatch.fold(rows)
        self._window_uids = []

    # --- shared geometry ---------------------------------------------------

    def _vocabulary(self) -> tuple[list[tuple[str, str]], dict]:
        vocabulary = sorted(self._dur_sum)
        return vocabulary, {key: i for i, key in enumerate(vocabulary)}

    def _fill_row(self, rows, position, uid, column, width) -> None:
        for key, stats in self._unique_steps[uid].operators.items():
            index = column[key]
            rows[position, index] = stats.total_duration_us
            rows[position, width + index] = stats.count

    def _unique_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw feature rows of the signature table + multiplicities."""
        vocabulary, column = self._vocabulary()
        width = len(vocabulary)
        rows = np.zeros((len(self._unique_steps), 2 * max(width, 1)))
        for uid in range(len(self._unique_steps)):
            self._fill_row(rows, uid, uid, column, width)
        return rows, np.asarray(self._unique_counts, dtype=float)

    def provisional_labels(self) -> np.ndarray:
        """Mini-batch cluster label per folded step (live, cheap).

        These are the between-analyses labels the mini-batch centroids
        imply; the full :meth:`analyze` labels supersede them.
        """
        if self._steps_folded == 0:
            return np.zeros(0, dtype=int)
        rows, _weights = self._unique_rows()
        per_uid = self._minibatch.assign(rows)
        return self._expand(per_uid)

    def _expand(self, per_uid: np.ndarray) -> np.ndarray:
        """Per-signature values expanded to one entry per folded step."""
        run_values = np.asarray([per_uid[run.uid] for run in self._runs])
        run_counts = np.asarray([run.count for run in self._runs])
        return np.repeat(run_values, run_counts)

    def state_bytes(self) -> int:
        """Approximate resident footprint of the streaming state.

        Counts the signature table (representative steps + moments),
        the run segments, and the mini-batch centroids — everything the
        analyzer retains between steps. Deliberately excludes the
        transient buffers :meth:`analyze` allocates.
        """
        operators = sum(len(step.operators) for step in self._unique_steps)
        signature_table = 120 * len(self._unique_steps) + 96 * operators
        moments = 4 * 96 * len(self._dur_sum)
        runs = 96 * len(self._runs)
        return int(signature_table + moments + runs + self._minibatch.state_bytes())

    # --- full analysis -----------------------------------------------------

    def analyze(self) -> StreamingAnalysis:
        """Full phase analysis (PCA'd cluster labels + boundaries).

        Non-destructive: folding can continue afterwards and a later
        call reflects the longer stream.
        """
        if self._steps_folded == 0:
            raise AnalyzerError("no steps folded into the streaming analyzer")
        if self.config.mode == "exact":
            labels, params = self._analyze_exact()
        else:
            labels, params = self._analyze_sketch()
        phases, boundaries = self._build_phases(labels)
        return StreamingAnalysis(
            method=f"kmeans-streaming-{self.config.mode}",
            params=params,
            labels=labels,
            phases=phases,
            boundaries=boundaries,
        )

    def _analyze_exact(self) -> tuple[np.ndarray, dict]:
        """The batch pipeline over a by-reference reconstruction.

        ``steps_view`` is a transient list of *pointers* into the
        signature table (steps with equal signatures share one
        representative object), pushed through the identical
        ``build_features -> PCA -> kmeans`` calls — and the identical
        seed substreams — the batch analyzer uses. Labels depend only
        on the feature rows, and equal signatures mean equal rows, so
        the result is bit-identical to
        ``TPUPointAnalyzer(records).kmeans_phases()``.
        """
        steps_view: list[StepStats] = []
        for run in self._runs:
            steps_view.extend([self._unique_steps[run.uid]] * run.count)
        combined = build_features(steps_view).combined(standardize=True)
        matrix = PCA(max_components=self.config.max_pca_dims).fit_transform(combined)
        k = self.config.k
        if k is None:
            k = self._choose_k_exact(matrix)
        result = batch_kmeans(matrix, k, seed=self.config.seed)
        return result.labels, {"k": k, "inertia": result.inertia, "mode": "exact"}

    def _choose_k_exact(self, matrix: np.ndarray) -> int:
        """The batch analyzer's elbow selection, same sweep, same seeds."""
        feasible = [k for k in K_SWEEP if k <= matrix.shape[0]]
        if not feasible:
            raise AnalyzerError("no feasible k values for the sample count")
        sweep = {
            k: batch_kmeans(matrix, k, seed=self.config.seed).inertia
            for k in feasible
        }
        ks = sorted(sweep)
        return ks[find_elbow([float(k) for k in ks], [sweep[k] for k in ks])]

    def _analyze_sketch(self) -> tuple[np.ndarray, dict]:
        """Never-materializing path: moments -> eigen PCA -> weighted k-means."""
        rows, weights = self._unique_rows()
        vocabulary, column = self._vocabulary()
        width = max(len(vocabulary), 1)
        n = float(self._steps_folded)
        mean = np.zeros(2 * width)
        second = np.zeros(2 * width)
        for key, index in column.items():
            mean[index] = self._dur_sum[key] / n
            second[index] = self._dur_sumsq[key] / n
            mean[width + index] = self._cnt_sum[key] / n
            second[width + index] = self._cnt_sumsq[key] / n
        variance = np.maximum(second - mean**2, 0.0)
        std = np.sqrt(variance)
        std[std == 0.0] = 1.0
        standardized = (rows - mean) / std
        # Weighted covariance of the standardized rows about their
        # weighted mean — the deduplicated form of the incremental
        # rank-1 covariance update.
        weighted_mean = (weights @ standardized) / n
        centered = standardized - weighted_mean
        denominator = max(n - 1.0, 1.0)
        covariance = (centered.T * weights) @ centered / denominator
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        rank = min(self.config.max_pca_dims, centered.shape[1])
        components = eigenvectors[:, order[:rank]]
        projected = centered @ components
        k = self.config.k
        if k is None:
            k = self._choose_k_sketch(projected, weights)
        per_uid, inertia = _weighted_kmeans(projected, weights, k, self.config.seed)
        labels = self._expand(per_uid)
        return labels, {"k": k, "inertia": inertia, "mode": "sketch"}

    def _choose_k_sketch(self, projected: np.ndarray, weights: np.ndarray) -> int:
        feasible = [k for k in K_SWEEP if k <= projected.shape[0]]
        if not feasible:
            feasible = [1]
        sweep = {
            k: _weighted_kmeans(projected, weights, k, self.config.seed)[1]
            for k in feasible
        }
        ks = sorted(sweep)
        if len(ks) <= 2:
            return ks[0]
        return ks[find_elbow([float(k) for k in ks], [sweep[k] for k in ks])]

    def _build_phases(
        self, labels: np.ndarray
    ) -> tuple[list[StreamingPhase], list[PhaseBoundary]]:
        """Phase tables + boundary segments from the run aggregates.

        Every step of one run shares a signature and therefore a label,
        so a run maps to exactly one phase; phase operator totals scale
        the signature's per-step stats by the run multiplicity. Phase
        *metadata* therefore matches batch phases up to floating-point
        accumulation order, while the labels themselves are whatever
        the analysis mode guarantees.
        """
        phases: dict[int, StreamingPhase] = {}
        boundaries: list[PhaseBoundary] = []
        position = 0
        for run in self._runs:
            label = int(labels[position])
            phase = phases.get(label)
            if phase is None:
                phase = StreamingPhase(phase_id=label, first_step=run.first_step)
                phases[label] = phase
            phase.num_steps += run.count
            phase.last_step = run.last_step
            phase.duration_us += run.duration_us
            phase.tpu_idle_us += run.tpu_idle_us
            phase.mxu_flops += run.mxu_flops
            for key, stats in self._unique_steps[run.uid].operators.items():
                existing = phase.operators.get(key)
                if existing is None:
                    phase.operators[key] = OperatorStats(
                        name=stats.name,
                        device=stats.device,
                        count=stats.count * run.count,
                        total_duration_us=stats.total_duration_us * run.count,
                    )
                else:
                    existing.count += stats.count * run.count
                    existing.total_duration_us += stats.total_duration_us * run.count
            end_position = position + run.count - 1
            if boundaries and boundaries[-1].phase_id == label:
                previous = boundaries[-1]
                boundaries[-1] = PhaseBoundary(
                    phase_id=label,
                    start_position=previous.start_position,
                    end_position=end_position,
                    first_step=previous.first_step,
                    last_step=run.last_step,
                )
            else:
                boundaries.append(
                    PhaseBoundary(
                        phase_id=label,
                        start_position=position,
                        end_position=end_position,
                        first_step=run.first_step,
                        last_step=run.last_step,
                    )
                )
            position += run.count
        ordered = sorted(phases.values(), key=lambda phase: -phase.duration_us)
        return ordered, boundaries


__all__ = [
    "DEFAULT_MINIBATCH_CLUSTERS",
    "MiniBatchKMeans",
    "PhaseBoundary",
    "STREAMING_MODES",
    "StreamingAnalysis",
    "StreamingAnalyzer",
    "StreamingConfig",
    "StreamingPhase",
]
