"""CSV export of analysis results.

The analyzer writes, alongside the chrome://tracing JSON, a CSV file
with a formatted description of each phase and of the TPU and host CPU
operations executed during training steps (Section IV-B).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.analyzer.phases import Phase
from repro.runtime.events import DeviceKind

_PHASE_COLUMNS = [
    "phase_id",
    "rank_by_duration",
    "num_steps",
    "start_us",
    "end_us",
    "total_duration_us",
    "idle_fraction",
    "top_tpu_operators",
    "top_host_operators",
]

_OPERATOR_COLUMNS = [
    "phase_id",
    "device",
    "operator",
    "invocations",
    "total_duration_us",
]


def write_phase_csv(path: str | Path, phases: list[Phase]) -> Path:
    """One row per phase with its headline statistics."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_PHASE_COLUMNS)
        for rank, phase in enumerate(phases):
            tpu_top = [s.name for s in phase.top_operators(5, DeviceKind.TPU)]
            host_top = [s.name for s in phase.top_operators(5, DeviceKind.HOST)]
            writer.writerow(
                [
                    phase.phase_id,
                    rank,
                    phase.num_steps,
                    f"{phase.start_us:.1f}",
                    f"{phase.end_us:.1f}",
                    f"{phase.total_duration_us:.1f}",
                    f"{phase.idle_fraction:.4f}",
                    ";".join(tpu_top),
                    ";".join(host_top),
                ]
            )
    return path


def write_operator_csv(path: str | Path, phases: list[Phase]) -> Path:
    """One row per (phase, operator) with counts and durations."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_OPERATOR_COLUMNS)
        for phase in phases:
            for stats in phase.operator_totals():
                writer.writerow(
                    [
                        phase.phase_id,
                        stats.device.value,
                        stats.name,
                        stats.count,
                        f"{stats.total_duration_us:.1f}",
                    ]
                )
    return path
