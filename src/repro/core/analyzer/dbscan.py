"""DBSCAN clustering, implemented from scratch.

TPUPoint-Analyzer's alternative to k-means (Section IV-A): density-based
clustering over the same frequency vectors, sweeping the minimum number
of samples required to form a cluster from 5 to 200 in steps of 25 and
applying the elbow method to the noise ratio (unlabeled points / total).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError

NOISE = -1


@dataclass(frozen=True)
class DbscanResult:
    """Outcome of one DBSCAN run."""

    eps: float
    min_samples: int
    labels: np.ndarray

    @property
    def num_clusters(self) -> int:
        return len({label for label in self.labels.tolist() if label != NOISE})

    @property
    def noise_ratio(self) -> float:
        """Unlabeled points over total points (the paper's Figure 5 metric)."""
        if len(self.labels) == 0:
            return 0.0
        return float((self.labels == NOISE).sum()) / len(self.labels)


def default_eps(matrix: np.ndarray, neighbor: int = 10, percentile: float = 75.0) -> float:
    """A data-driven eps from the k-distance curve.

    The paper sweeps min_samples with eps held fixed; this heuristic
    picks that fixed eps as a high percentile of the distance to the
    ``neighbor``-th nearest point — wide enough that the dominant dense
    region (the training steps) forms a cluster at moderate minimum
    sample counts, the standard k-distance recipe.
    """
    if matrix.shape[0] <= 1:
        return 1.0
    distances = np.sqrt(((matrix[:, None, :] - matrix[None, :, :]) ** 2).sum(axis=2))
    distances.sort(axis=1)
    column = min(neighbor, distances.shape[1] - 1)
    eps = float(np.percentile(distances[:, column], percentile))
    return eps if eps > 0.0 else 1.0


def dbscan(matrix: np.ndarray, eps: float, min_samples: int) -> DbscanResult:
    """Density-based clustering of the rows of ``matrix``."""
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError("DBSCAN needs a non-empty 2-D matrix")
    if eps <= 0.0:
        raise ClusteringError("eps must be positive")
    if min_samples <= 0:
        raise ClusteringError("min_samples must be positive")
    n = matrix.shape[0]
    distances = np.sqrt(((matrix[:, None, :] - matrix[None, :, :]) ** 2).sum(axis=2))
    neighbors = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    core = np.array([len(nbrs) >= min_samples for nbrs in neighbors])

    labels = np.full(n, NOISE, dtype=int)
    cluster = 0
    for seed in range(n):
        if labels[seed] != NOISE or not core[seed]:
            continue
        # Grow a new cluster from this unvisited core point.
        labels[seed] = cluster
        frontier = deque(neighbors[seed].tolist())
        while frontier:
            point = frontier.popleft()
            if labels[point] == NOISE:
                labels[point] = cluster
                if core[point]:
                    frontier.extend(neighbors[point].tolist())
        cluster += 1
    return DbscanResult(eps=eps, min_samples=min_samples, labels=labels)


def sweep_min_samples(
    matrix: np.ndarray,
    min_samples_values: list[int] | range = range(5, 201, 25),
    eps: float | None = None,
) -> dict[int, DbscanResult]:
    """Run DBSCAN for each min_samples value (the analyzer's stage 2)."""
    if eps is None:
        eps = default_eps(matrix)
    results: dict[int, DbscanResult] = {}
    for min_samples in min_samples_values:
        results[min_samples] = dbscan(matrix, eps, min_samples)
    if not results:
        raise ClusteringError("empty min_samples sweep")
    return results
