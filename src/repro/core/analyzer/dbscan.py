"""DBSCAN clustering, implemented from scratch.

TPUPoint-Analyzer's alternative to k-means (Section IV-A): density-based
clustering over the same frequency vectors, sweeping the minimum number
of samples required to form a cluster from 5 to 180 in steps of 25 and
applying the elbow method to the noise ratio (unlabeled points / total).

Distances come from the blocked shared kernel
(:mod:`repro.core.analyzer.distance`): one pass builds the
eps-neighborhood graph (and, when eps is unset, eps itself), and every
``min_samples`` value of the sweep is a cheap relabeling of that graph —
the core-point test is a single vectorized comparison of the CSR
neighbor counts, with no per-point index lists materialized for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analyzer.distance import (
    NeighborGraph,
    build_neighbor_graph,
    kth_neighbor_distances,
)
from repro.errors import ClusteringError

NOISE = -1

#: The paper's min_samples sweep: 5..180 in steps of 25 (Section IV-A).
#: Shared by ``sweep_min_samples``, ``TPUPointAnalyzer.dbscan_sweep``,
#: and ``choose_min_samples`` so the ranges cannot drift apart again.
MIN_SAMPLES_SWEEP = range(5, 181, 25)

#: k-distance heuristic defaults (see :func:`default_eps`).
DEFAULT_EPS_NEIGHBOR = 10
DEFAULT_EPS_PERCENTILE = 75.0


@dataclass(frozen=True)
class DbscanResult:
    """Outcome of one DBSCAN run."""

    eps: float
    min_samples: int
    labels: np.ndarray

    @property
    def num_clusters(self) -> int:
        """Number of clusters found (noise excluded)."""
        return len({label for label in self.labels.tolist() if label != NOISE})

    @property
    def noise_ratio(self) -> float:
        """Unlabeled points over total points (the paper's Figure 5 metric)."""
        if len(self.labels) == 0:
            return 0.0
        return float((self.labels == NOISE).sum()) / len(self.labels)


def default_eps(
    matrix: np.ndarray,
    neighbor: int = DEFAULT_EPS_NEIGHBOR,
    percentile: float = DEFAULT_EPS_PERCENTILE,
    memory_budget_bytes: float | None = None,
) -> float:
    """A data-driven eps from the k-distance curve.

    The paper sweeps min_samples with eps held fixed; this heuristic
    picks that fixed eps as a high percentile of the distance to the
    ``neighbor``-th nearest point — wide enough that the dominant dense
    region (the training steps) forms a cluster at moderate minimum
    sample counts, the standard k-distance recipe. Computed in row
    blocks (one distance pass, O(block x n) transient memory); when a
    neighbor graph is being built anyway, :func:`build_neighbor_graph`
    folds this heuristic into that same pass instead.
    """
    if matrix.shape[0] <= 1:
        return 1.0
    kth = kth_neighbor_distances(
        matrix, neighbor, memory_budget_bytes=memory_budget_bytes
    )
    eps = float(np.percentile(kth, percentile))
    return eps if eps > 0.0 else 1.0


def dbscan_from_graph(graph: NeighborGraph, min_samples: int) -> DbscanResult:
    """Label the points of a prebuilt neighbor graph — no distance work.

    This is the sweep's relabeling step: core points fall out of one
    vectorized comparison against the CSR neighbor counts, and the BFS
    expands whole frontiers at a time over CSR slices. Visit order
    differs from the old per-point traversal but the labels cannot:
    cluster ids are assigned by seed order, and every point reachable
    from a seed's core set joins that cluster regardless of walk order.
    """
    if min_samples <= 0:
        raise ClusteringError("min_samples must be positive")
    n = graph.num_points
    core = graph.counts >= min_samples
    indptr, indices = graph.indptr, graph.indices

    labels = np.full(n, NOISE, dtype=int)
    reached = np.zeros(n, dtype=bool)  # per-level scratch, allocated once
    cluster = 0
    for seed in range(n):
        if labels[seed] != NOISE or not core[seed]:
            continue
        # Grow a new cluster from this unvisited core point, one BFS
        # level at a time: every neighbor of the current core frontier
        # joins the cluster, and the core ones among them expand next.
        # Clusters still start sequentially from the lowest-index
        # unvisited core point, so contended border points land in the
        # same cluster the per-point traversal gave them.
        labels[seed] = cluster
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            reached.fill(False)
            for point in frontier:
                reached[indices[indptr[point] : indptr[point + 1]]] = True
            newly = np.flatnonzero(reached & (labels == NOISE))
            labels[newly] = cluster
            frontier = newly[core[newly]]
        cluster += 1
    return DbscanResult(eps=graph.eps, min_samples=min_samples, labels=labels)


def dbscan(
    matrix: np.ndarray,
    eps: float,
    min_samples: int,
    *,
    graph: NeighborGraph | None = None,
    memory_budget_bytes: float | None = None,
) -> DbscanResult:
    """Density-based clustering of the rows of ``matrix``."""
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError("DBSCAN needs a non-empty 2-D matrix")
    if eps <= 0.0:
        raise ClusteringError("eps must be positive")
    if min_samples <= 0:
        raise ClusteringError("min_samples must be positive")
    if graph is None:
        graph = build_neighbor_graph(
            matrix, eps, memory_budget_bytes=memory_budget_bytes
        )
    return dbscan_from_graph(graph, min_samples)


def sweep_min_samples(
    matrix: np.ndarray,
    min_samples_values: list[int] | range = MIN_SAMPLES_SWEEP,
    eps: float | None = None,
    *,
    graph: NeighborGraph | None = None,
    memory_budget_bytes: float | None = None,
    pool=None,
) -> dict[int, DbscanResult]:
    """Run DBSCAN for each min_samples value (the analyzer's stage 2).

    The neighbor graph — and eps, when unset — is computed in exactly
    one distance pass and reused across every sweep point; with a
    :class:`~repro.parallel.WorkerPool` the relabelings fan out across
    workers (each one is pure graph traversal, so results are identical
    at any worker count).
    """
    values = list(min_samples_values)
    if not values:
        raise ClusteringError("empty min_samples sweep")
    if any(v <= 0 for v in values):
        raise ClusteringError("min_samples must be positive")
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError("DBSCAN needs a non-empty 2-D matrix")
    if graph is None:
        graph = build_neighbor_graph(
            matrix, eps, memory_budget_bytes=memory_budget_bytes
        )
    if pool is not None and not pool.is_serial:
        results = pool.map(lambda ms: dbscan_from_graph(graph, ms), values)
    else:
        results = [dbscan_from_graph(graph, ms) for ms in values]
    return dict(zip(values, results))
