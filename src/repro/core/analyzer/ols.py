"""Online linear scan (OLS) phase detection.

TPUPoint's lower-overhead alternative to clustering (Section IV-A): as
records stream in, compare each step's event set with its predecessor's
using Equation 1 —

    StepSimilarity(S_{i-1}, S_{i-2}) = |S_{i-1} ∩ S_{i-2}|
                                       / min(|S_{i-1}|, |S_{i-2}|)

— and merge the step into the current phase when the similarity meets
the threshold (default 70%), otherwise open a new phase. Only the two
most recent steps are held, so memory stays constant regardless of run
length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.profiler.record import StepStats
from repro.errors import AnalyzerError

DEFAULT_SIMILARITY_THRESHOLD = 0.70


def step_similarity(a: frozenset, b: frozenset) -> float:
    """Equation 1: intersection over the smaller event set."""
    smaller = min(len(a), len(b))
    if smaller == 0:
        return 1.0 if len(a) == len(b) else 0.0
    return len(a & b) / smaller


@dataclass
class OnlineLinearScan:
    """Streaming phase detector with O(1) state.

    Feed steps in order with :meth:`observe`; read phase labels back
    either incrementally (the return value) or via :attr:`labels`.
    """

    threshold: float = DEFAULT_SIMILARITY_THRESHOLD
    labels: list[int] = field(default_factory=list)
    _previous_events: frozenset | None = None
    _current_phase: int = -1

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise AnalyzerError("similarity threshold must be in [0, 1]")

    @property
    def num_phases(self) -> int:
        """Number of phases segmented so far."""
        return self._current_phase + 1

    def observe(self, step: StepStats) -> int:
        """Assign the next step to a phase; returns the phase label."""
        events = step.event_set
        if self._previous_events is None:
            self._current_phase = 0
        elif step_similarity(events, self._previous_events) < self.threshold:
            self._current_phase += 1
        self._previous_events = events
        self.labels.append(self._current_phase)
        return self._current_phase


def ols_labels(steps: list[StepStats], threshold: float = DEFAULT_SIMILARITY_THRESHOLD) -> np.ndarray:
    """Phase labels for a full list of steps (offline convenience)."""
    if not steps:
        raise AnalyzerError("OLS needs at least one step")
    scanner = OnlineLinearScan(threshold=threshold)
    for step in steps:
        scanner.observe(step)
    return np.asarray(scanner.labels, dtype=int)


def sweep_thresholds(
    steps: list[StepStats], thresholds: list[float]
) -> dict[float, int]:
    """Number of phases per similarity threshold (Figure 6's series)."""
    return {
        threshold: int(ols_labels(steps, threshold).max()) + 1 for threshold in thresholds
    }
