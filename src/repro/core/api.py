"""The TPUPoint programming interface (Figure 2 of the paper).

The user-facing front end mirrors the paper's example code:

>>> estimator = workload_model.build_estimator(dataset)   # TPUEstimator
>>> tpprofiler = TPUPoint(estimator)
>>> tpprofiler.Start(analyzer=True)
>>> estimator.train()
>>> tpprofiler.Stop()
>>> analysis = tpprofiler.analyzer().ols_phases()

``Start(analyzer=True)`` spawns the profiling and recording threads;
``Start(analyzer=False)`` enables only TPUPoint-Optimizer, which then
drives the run itself through :meth:`optimize`. After ``Stop()``, the
collected statistical records feed :class:`TPUPointAnalyzer`.

Pythonic aliases (:meth:`start`, :meth:`stop`) are provided alongside
the paper's capitalized method names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.analyzer.analyzer import TPUPointAnalyzer
from repro.core.optimizer.optimizer import (
    OptimizationResult,
    OptimizerOptions,
    TPUPointOptimizer,
)
from repro.core.profiler.options import ProfilerOptions
from repro.core.profiler.profiler import TPUPointProfiler
from repro.core.profiler.record import ProfileRecord
from repro.errors import ProfilerError
from repro.runtime.estimator import TPUEstimator


@dataclass
class TPUPoint:
    """The complete TPUPoint toolchain bound to one estimator."""

    estimator: TPUEstimator
    profiler_options: ProfilerOptions = field(default_factory=ProfilerOptions)
    optimizer_options: OptimizerOptions = field(default_factory=OptimizerOptions)

    def __post_init__(self) -> None:
        self._profiler: TPUPointProfiler | None = None
        self._records: list[ProfileRecord] | None = None
        self._analyzer_enabled = False

    # --- the paper's interface -----------------------------------------------

    def Start(self, analyzer: bool = True) -> None:  # noqa: N802 - paper API
        """Begin profiling; ``analyzer`` enables record persistence."""
        if self._profiler is not None:
            raise ProfilerError("TPUPoint already started")
        self._analyzer_enabled = analyzer
        self._profiler = TPUPointProfiler(self.estimator, self.profiler_options)
        self._profiler.start(analyzer=analyzer)

    def Stop(self) -> list[ProfileRecord]:  # noqa: N802 - paper API
        """Drain the final profile and stop all profiler threads."""
        if self._profiler is None:
            raise ProfilerError("TPUPoint was never started")
        self._records = self._profiler.stop()
        return self._records

    # Pythonic aliases.
    start = Start
    stop = Stop

    # --- post-execution analysis -----------------------------------------------

    @property
    def records(self) -> list[ProfileRecord]:
        """The statistical records collected between Start() and Stop()."""
        if self._records is None:
            raise ProfilerError("records are available only after Stop()")
        return self._records

    def save_records(self, directory) -> "Path":
        """Persist the collected records for offline analysis.

        Returns the directory written; load them back with
        :func:`repro.core.profiler.load_records`.
        """
        from repro.core.profiler.serialize import save_records

        return save_records(self.records, directory)

    def fault_report(self) -> dict:
        """What the active fault plan injected (empty when fault-free)."""
        if self._profiler is None:
            raise ProfilerError("TPUPoint was never started")
        return self._profiler.fault_report()

    def analyzer(self, **kwargs) -> TPUPointAnalyzer:
        """A TPUPoint-Analyzer over this run's records."""
        if not self._analyzer_enabled:
            raise ProfilerError(
                "Start(analyzer=True) is required for post-execution analysis"
            )
        return TPUPointAnalyzer(self.records, **kwargs)

    # --- online optimization -------------------------------------------------------

    def optimize(self) -> OptimizationResult:
        """Run the workload under TPUPoint-Optimizer's control.

        Unlike profiling (where the user drives ``estimator.train()``),
        optimization owns the training loop: it interleaves detection,
        online tuning, and the remainder of the run.
        """
        optimizer = TPUPointOptimizer(self.estimator, self.optimizer_options)
        return optimizer.run()
