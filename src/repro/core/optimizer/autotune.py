"""Offline autotuning engine: strategy search with phase-keyed warm starts.

Where :class:`~repro.core.optimizer.optimizer.TPUPointOptimizer` tunes
*one live run online* (the paper's workflow), this engine searches the
configuration space *offline* across many short runs: every candidate
configuration is measured on a fresh estimator built by a caller-
supplied factory, so candidates are independent and can fan out over a
:class:`~repro.parallel.WorkerPool`.

The run proceeds in four moves:

1. **Fingerprint** — run a short detection window with the defaults and
   take the critical (or dominant) phase's top-operator signature
   (:meth:`CriticalPhaseDetector.phase_signature`).
2. **Warm start** — look the signature up in a
   :class:`~repro.core.optimizer.knowledge.TuningKnowledgeBase`; on a
   hit above the Equation-1 similarity threshold, the stored best
   configuration becomes the search's starting point.
3. **Search** — any registered strategy (hill climb, annealing,
   racing, surrogate) measures candidates through
   :class:`EstimatorTrialEvaluator`; determinism at any worker count is
   inherited from the pool's submission-order results and per-trial RNG
   substreams. The ``surrogate`` strategy additionally gets a learned
   performance model (:mod:`repro.core.optimizer.surrogate`) fitted
   from the knowledge base's recorded trial observations plus the
   committed bench corpus, and spends real trials only on the
   predicted frontier.
4. **Guard and record** — a warm start must *earn* its keep: if the
   warm search's best does not beat a fresh defaults measurement (or
   the stored config no longer validates, or quality drifts), the
   result rolls back to the defaults and the rollback is counted. A
   successful search is recorded back into the knowledge base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.core.analyzer.ols import DEFAULT_SIMILARITY_THRESHOLD
from repro.core.optimizer.detector import CriticalPhaseDetector
from repro.core.optimizer.knowledge import (
    KnowledgeEntry,
    KnowledgeMatch,
    TuningKnowledgeBase,
)
from repro.core.optimizer.parameters import discover_parameters
from repro.core.optimizer.quality import OutputSignature
from repro.core.optimizer.strategies import (
    CandidateTrial,
    SearchOutcome,
    build_strategy,
)
from repro.core.optimizer.surrogate import SurrogateModel, build_surrogate
from repro.core.profiler.options import ProfilerOptions
from repro.core.profiler.profiler import TPUPointProfiler
from repro.core.profiler.streaming import StepStream
from repro.errors import (
    ConfigurationError,
    OptimizerError,
    QualityViolationError,
)
from repro.host.pipeline import PipelineConfig
from repro.parallel import WorkerPool, resolve_pool, task_rng
from repro.rng import DEFAULT_SEED
from repro.runtime.estimator import TPUEstimator

EstimatorFactory = Callable[[PipelineConfig], TPUEstimator]

_ROLLBACKS = obs.counter(
    "repro_optimizer_warmstart_rollbacks_total",
    "Warm-started searches rolled back by the quality/throughput guard.",
).labels()


@dataclass(frozen=True)
class AutotuneOptions:
    """Configuration of one offline autotune run.

    Attributes:
        strategy: registered search-strategy name (``tpupoint tune
            --strategy``); see :data:`repro.core.optimizer.STRATEGIES`.
        workers: worker-pool width for concurrent candidate trials.
        seed: root seed for every trial and strategy RNG substream.
        detection_steps: cap on steps spent fingerprinting the phase.
        detection_chunk_steps: steps between detector checks.
        profile_interval_ms: profiler cadence during detection.
        signature_top_k: operators kept in the phase signature.
        knowledge_threshold: Equation-1 similarity a stored signature
            must clear to warm-start the search.
        overhead_us_per_trial: simulated post-processing cost charged
            per trial in the engine's cost accounting.
        workload: label stored with recorded knowledge entries.
        surrogate_kind: regressor behind ``--strategy surrogate``
            (``ridge`` or ``stumps``; see
            :mod:`repro.core.optimizer.surrogate`).
        surrogate_corpus: optional path to a committed training corpus
            of ``(signature, config) -> throughput`` pairs merged into
            the surrogate's training set alongside the knowledge base.
    """

    strategy: str = "racing"
    workers: int = 1
    seed: int = DEFAULT_SEED
    detection_steps: int = 40
    detection_chunk_steps: int = 10
    profile_interval_ms: float = 500.0
    signature_top_k: int = 8
    knowledge_threshold: float = DEFAULT_SIMILARITY_THRESHOLD
    overhead_us_per_trial: float = 40_000.0
    workload: str = ""
    surrogate_kind: str = "ridge"
    surrogate_corpus: str | None = None

    def __post_init__(self) -> None:
        if self.detection_steps <= 0 or self.detection_chunk_steps <= 0:
            raise OptimizerError("detection step counts must be positive")
        if self.signature_top_k <= 0:
            raise OptimizerError("signature_top_k must be positive")
        if not 0.0 <= self.knowledge_threshold <= 1.0:
            raise OptimizerError("knowledge_threshold must be in [0, 1]")


class EstimatorTrialEvaluator:
    """Measures candidate configurations on fresh, independent estimators.

    Each trial builds its own estimator via the factory, seeds it with a
    substream named by the trial key, runs the requested steps on the
    simulated clock, and verifies the output signature never drifts from
    the defaults-built reference. Total simulated cost (run time plus
    the per-trial post-processing overhead the paper measures) is
    accumulated in submission order, so it too is worker-count-invariant.
    """

    def __init__(
        self,
        factory: EstimatorFactory,
        seed: int,
        pool: WorkerPool | int | None = None,
        overhead_us_per_trial: float = 40_000.0,
        reference: OutputSignature | None = None,
    ):
        self.factory = factory
        self.seed = seed
        self.pool = resolve_pool(pool, label="optimizer")
        self.overhead_us_per_trial = overhead_us_per_trial
        self.reference = reference
        self.simulated_us = 0.0

    def _run(self, request: tuple[str, PipelineConfig, int]) -> CandidateTrial:
        key, config, steps = request
        estimator = self.factory(config)
        estimator.rng = task_rng(self.seed, f"optimizer:trial:{key}")
        signature = OutputSignature.of(estimator)
        if self.reference is not None and signature != self.reference:
            raise QualityViolationError(
                f"trial {key!r} changed the output signature from "
                f"{self.reference} to {signature}"
            )
        session = estimator.session
        start = session.clock.now_us
        executed = estimator.train_steps(steps)
        elapsed = session.clock.now_us - start
        return CandidateTrial(key=key, config=config, steps=executed, elapsed_us=elapsed)

    def evaluate(
        self, requests: Sequence[tuple[str, PipelineConfig, int]]
    ) -> list[CandidateTrial]:
        """Measure a batch of candidates; results come in request order."""
        trials = self.pool.map(self._run, list(requests))
        for trial in trials:
            self.simulated_us += trial.elapsed_us + self.overhead_us_per_trial
        return trials


def detect_phase_signature(
    factory: EstimatorFactory,
    config: PipelineConfig,
    options: AutotuneOptions | None = None,
) -> frozenset[str]:
    """Fingerprint the workload's tuning-relevant phase.

    Runs a short window under ``config`` with the profiler streaming
    into the critical-phase detector (the online optimizer's detection
    loop, bounded by ``detection_steps``), then returns the phase
    signature the knowledge base keys on.
    """
    options = options or AutotuneOptions()
    estimator = factory(config)
    estimator.rng = task_rng(options.seed, "optimizer:detect")
    detector = CriticalPhaseDetector()
    stream = StepStream()
    profiler = TPUPointProfiler(
        estimator,
        ProfilerOptions(
            request_interval_ms=options.profile_interval_ms,
            record_to_storage=False,
        ),
    )
    profiler.start(analyzer=False)
    consumed = 0
    remaining = options.detection_steps
    with obs.trace("optimizer.detect_signature") as span:
        while remaining > 0:
            executed = estimator.train_steps(
                min(options.detection_chunk_steps, remaining)
            )
            if executed == 0:
                break
            remaining -= executed
            records = profiler.records
            for record in records[consumed:]:
                for step in stream.submit(record):
                    detector.observe(step)
            consumed = len(records)
            if detector.critical:
                break
        # stop() flushes a final partial record; feed it too, so windows
        # shorter than one profile interval still yield a fingerprint.
        for record in profiler.stop()[consumed:]:
            for step in stream.submit(record):
                detector.observe(step)
        for step in stream.flush():
            detector.observe(step)
        signature = detector.phase_signature(options.signature_top_k)
        span.set(critical=detector.critical, operators=len(signature))
    return signature


@dataclass
class AutotuneResult:
    """Everything one autotune run measured and decided.

    ``surrogate`` is the learned performance model the search consulted
    (``--strategy surrogate`` only; None otherwise) — after the run it
    has folded in every real trial, so ``surrogate.to_document()`` is
    the artifact ``tpupoint tune --surrogate-out`` dumps.
    ``knowledge_persist_error`` surfaces a knowledge base that could
    not be written (e.g. a read-only ``--knowledge-dir``).
    """

    outcome: SearchOutcome
    signature: frozenset[str]
    warm_started: bool = False
    warm_similarity: float | None = None
    rolled_back: bool = False
    knowledge_recorded: bool = False
    simulated_us: float = 0.0
    surrogate: SurrogateModel | None = None
    knowledge_persist_error: str | None = None

    @property
    def best_config(self) -> PipelineConfig:
        """The configuration the run settled on (post-guard)."""
        return self.outcome.best_config

    @property
    def improvement(self) -> float:
        """Best over baseline throughput (>1 means faster)."""
        return self.outcome.improvement

    @property
    def trials(self) -> list[CandidateTrial]:
        """Every real trial the search measured, in submission order."""
        return self.outcome.trials


def autotune(
    factory: EstimatorFactory,
    initial_config: PipelineConfig | None = None,
    options: AutotuneOptions | None = None,
    knowledge: TuningKnowledgeBase | None = None,
    pool: WorkerPool | int | None = None,
    strategy_options: dict | None = None,
) -> AutotuneResult:
    """Run the full offline autotune: fingerprint, warm-start, search, guard."""
    options = options or AutotuneOptions()
    initial = initial_config if initial_config is not None else PipelineConfig()

    with obs.trace("optimizer.autotune", strategy=options.strategy) as span:
        signature = detect_phase_signature(factory, initial, options)

        # Warm start: overlay the nearest stored configuration, if any.
        match: KnowledgeMatch | None = None
        start_config = initial
        if knowledge is not None and len(knowledge) > 0:
            match = knowledge.lookup(signature, options.knowledge_threshold)
        warm_started = False
        rolled_back = False
        if match is not None:
            try:
                start_config = match.entry.apply_to(initial)
                warm_started = True
            except ConfigurationError:
                # Stored knobs no longer validate: treat as a miss.
                match = None
                start_config = initial
                rolled_back = True
                _ROLLBACKS.inc()

        parameters = discover_parameters(initial)
        reference = OutputSignature.of(factory(initial))
        resolved_options = dict(strategy_options or {})
        surrogate: SurrogateModel | None = None
        if options.strategy == "surrogate":
            # Build the learned performance model from every available
            # source (knowledge-base observations + the bench corpus)
            # and hand the strategy the phase fingerprint it predicts
            # under, plus the stored best configs as population seeds.
            surrogate = resolved_options.get("model") or build_surrogate(
                knowledge=knowledge,
                corpus=options.surrogate_corpus,
                kind=options.surrogate_kind,
            )
            resolved_options.setdefault("model", surrogate)
            resolved_options.setdefault("signature", signature)
            if knowledge is not None:
                resolved_options.setdefault(
                    "priors",
                    tuple(dict(entry.config) for entry in knowledge.entries),
                )
        strategy = build_strategy(options.strategy, **resolved_options)
        own_pool = not isinstance(pool, WorkerPool)
        worker_pool = resolve_pool(
            pool if pool is not None else options.workers, label="optimizer"
        )
        evaluator = EstimatorTrialEvaluator(
            factory,
            options.seed,
            pool=worker_pool,
            overhead_us_per_trial=options.overhead_us_per_trial,
            reference=reference,
        )
        try:
            try:
                outcome = strategy.search(
                    parameters, start_config, evaluator, options.seed
                )
            except QualityViolationError:
                if not warm_started:
                    raise
                # A warm-started candidate corrupted output: drop the
                # prior entirely and search cold from the defaults.
                warm_started = False
                rolled_back = True
                _ROLLBACKS.inc()
                outcome = strategy.search(parameters, initial, evaluator, options.seed)

            if warm_started:
                # The guard trial: the warm search's champion must beat a
                # fresh measurement of the user's defaults, else the warm
                # start misled the search and the defaults win.
                guard_steps = int(getattr(strategy, "trial_steps", 6))
                guard = evaluator.evaluate(
                    [("warmstart:guard", initial, guard_steps)]
                )[0]
                outcome.trials.append(guard)
                if outcome.best_throughput < guard.throughput:
                    rolled_back = True
                    _ROLLBACKS.inc()
                    outcome.best_config = initial
                    outcome.best_throughput = guard.throughput
        finally:
            if own_pool:
                worker_pool.shutdown()

        recorded = False
        persist_error: str | None = None
        if knowledge is not None and not rolled_back and outcome.improvement > 1.0:
            stored = {
                p.name: getattr(outcome.best_config, p.name) for p in parameters
            }
            observations = tuple(
                {
                    "config": {
                        p.name: getattr(trial.config, p.name) for p in parameters
                    },
                    "throughput": trial.throughput,
                }
                for trial in outcome.trials
            )
            knowledge.record(
                KnowledgeEntry(
                    signature=signature,
                    config=stored,
                    improvement=outcome.improvement,
                    trials=len(outcome.trials),
                    workload=options.workload,
                    observations=observations,
                )
            )
            knowledge.save()
            persist_error = knowledge.persist_error
            recorded = True

        span.set(
            warm_started=warm_started,
            rolled_back=rolled_back,
            trials=len(outcome.trials),
            improvement=outcome.improvement,
        )

    return AutotuneResult(
        outcome=outcome,
        signature=signature,
        warm_started=warm_started,
        warm_similarity=match.similarity if match is not None else None,
        rolled_back=rolled_back,
        knowledge_recorded=recorded,
        simulated_us=evaluator.simulated_us,
        surrogate=surrogate,
        knowledge_persist_error=(
            persist_error
            if persist_error is not None
            else (knowledge.persist_error if knowledge is not None else None)
        ),
    )
