"""Output-quality control.

TPUPoint-Optimizer "controls the output quality": a tuning move is only
kept if program output is unchanged (Section VII). In the simulation a
run's output is fully determined by its *output signature* — the model
graph, the batch size, and the number of training steps. Pipeline knobs
never enter the signature, so tuning them is always safe; anything that
would perturb the signature (a changed batch size, a truncated plan) is
a quality violation and must be rolled back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QualityViolationError
from repro.runtime.estimator import TPUEstimator


@dataclass(frozen=True)
class OutputSignature:
    """Everything that determines a training run's numerical output."""

    graph_name: str
    batch_size: int
    train_steps: int
    seed_dependent: bool = True

    @classmethod
    def of(cls, estimator: TPUEstimator) -> "OutputSignature":
        """Fingerprint what ``estimator`` would train (graph and plan)."""
        return cls(
            graph_name=estimator.train_graph.name,
            batch_size=estimator.plan.batch_size,
            train_steps=estimator.plan.train_steps,
        )


class QualityController:
    """Verifies tuning moves never change program output."""

    def __init__(self, estimator: TPUEstimator):
        self._estimator = estimator
        self._reference = OutputSignature.of(estimator)

    @property
    def reference(self) -> OutputSignature:
        """The signature captured when the controller was created."""
        return self._reference

    def verify(self) -> None:
        """Raise QualityViolationError if the output signature drifted."""
        current = OutputSignature.of(self._estimator)
        if current != self._reference:
            raise QualityViolationError(
                f"output signature changed from {self._reference} to {current}; "
                "the offending adjustment must be rolled back"
            )
