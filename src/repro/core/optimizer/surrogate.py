"""Learned performance surrogate for the offline autotune engine.

Kaufman et al.'s "A Learned Performance Model for Tensor Processing
Units" (PAPERS.md) shows accelerator runtime can be *predicted* from
program features instead of measured. This module applies that idea to
the tuning search: a small, deterministic, pure-numpy regressor maps
``(phase fingerprint, pipeline configuration)`` to predicted training
throughput, so :class:`~repro.core.optimizer.strategies.SurrogateStrategy`
can rank candidate configurations cheaply and spend *real* (simulated)
trials only on the predicted frontier.

Three sources feed the training set, in all cases as
``(signature, config) -> throughput`` :class:`TrainingPair` rows:

* the tuning knowledge base — every recorded search now carries its
  per-trial observations (:func:`mine_knowledge`);
* the committed bench corpus — a JSON file of pairs mined from the
  benchmark workloads (:func:`load_corpus`), so a cold fleet still has
  a prior;
* live trials — every real measurement the search completes is folded
  straight back in (:meth:`SurrogateModel.observe` + periodic refit).

Determinism contract: both model variants (:class:`RidgeModel`,
:class:`StumpModel`) are pure functions of the training set and their
hyperparameters — fitting draws no randomness, prediction involves no
data-dependent iteration order — so the same pairs always produce
bit-identical predictions, at any worker count, on repeated runs.
Ranking breaks prediction ties by candidate index (submission order),
never by float identity games.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import OptimizerError, StorageError
from repro.host.pipeline import PipelineConfig

#: Bump when the feature layout changes; dumps and corpora carry it.
FEATURE_SCHEMA_VERSION = 1

#: Operator names are feature-hashed into this many presence buckets.
SIGNATURE_BUCKETS = 16

#: Pipeline knobs the surrogate featurizes (the adjustable-parameter set).
TUNED_KNOBS = (
    "num_parallel_reads",
    "num_parallel_calls",
    "prefetch_depth",
    "shuffle_buffer",
    "infeed_threads",
    "vectorized_preprocess",
)

#: Below this many training pairs the model reports not-ready and the
#: search degrades to the cold (measure-everything) path.
MIN_TRAINING_PAIRS = 6

_SURROGATE_PAIRS = obs.gauge(
    "repro_optimizer_surrogate_pairs",
    "Training pairs held by the most recently fitted surrogate.",
).labels()
_SURROGATE_REFITS = obs.counter(
    "repro_optimizer_surrogate_refits_total",
    "Surrogate refits (initial fit plus online refits from real trials).",
).labels()
_SURROGATE_RANKINGS = obs.counter(
    "repro_optimizer_surrogate_rankings_total",
    "Candidate rankings answered by the surrogate, by model readiness.",
    labels=("outcome",),
)
_SURROGATE_ERROR = obs.histogram(
    "repro_optimizer_surrogate_rel_error",
    "Absolute relative error of surrogate predictions vs real trials.",
    buckets=(0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0),
).labels()


def _bucket(name: str) -> int:
    """Stable feature-hash bucket for one operator name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % SIGNATURE_BUCKETS


def _knob_value(config: PipelineConfig | dict, knob: str) -> float:
    if isinstance(config, dict):
        value = config.get(knob)
        if value is None:
            value = getattr(PipelineConfig(), knob)
    else:
        value = getattr(config, knob)
    return float(value)


def feature_vector(
    signature: frozenset[str], config: PipelineConfig | dict
) -> np.ndarray:
    """Featurize one ``(phase fingerprint, configuration)`` pair.

    Schema v1 (:data:`FEATURE_SCHEMA_VERSION`): six configuration
    features — log2 of the three thread knobs, raw prefetch depth,
    log2(1 + shuffle buffer), and the vectorization bit — followed by
    :data:`SIGNATURE_BUCKETS` hashed operator-presence buckets. The
    hashed signature lets one model serve many workloads: the buckets
    act as a workload indicator the regressor can assign offsets to.
    """
    features = np.zeros(6 + SIGNATURE_BUCKETS, dtype=np.float64)
    features[0] = math.log2(max(_knob_value(config, "num_parallel_reads"), 1.0))
    features[1] = math.log2(max(_knob_value(config, "num_parallel_calls"), 1.0))
    features[2] = _knob_value(config, "prefetch_depth")
    features[3] = math.log2(1.0 + _knob_value(config, "shuffle_buffer"))
    features[4] = math.log2(max(_knob_value(config, "infeed_threads"), 1.0))
    features[5] = _knob_value(config, "vectorized_preprocess")
    for name in signature:
        features[6 + _bucket(name)] = 1.0
    return features


@dataclass(frozen=True)
class TrainingPair:
    """One ``(phase fingerprint, configuration) -> throughput`` example."""

    signature: frozenset[str]
    config: dict
    throughput: float
    source: str = ""

    def __post_init__(self) -> None:
        if not self.signature:
            raise OptimizerError("training pair needs a non-empty signature")
        if self.throughput <= 0:
            raise OptimizerError("training pair needs a positive throughput")

    def key(self) -> tuple:
        """Dedup key: the signature plus the tuned knob values."""
        return (
            tuple(sorted(self.signature)),
            tuple(_knob_value(self.config, knob) for knob in TUNED_KNOBS),
        )

    def to_document(self) -> dict:
        """Serialize for the corpus / model-dump JSON."""
        return {
            "signature": sorted(self.signature),
            "config": dict(self.config),
            "throughput": self.throughput,
            "source": self.source,
        }

    @classmethod
    def from_document(cls, document: dict) -> "TrainingPair":
        """Parse one corpus row; raises StorageError when malformed."""
        try:
            return cls(
                signature=frozenset(document["signature"]),
                config=dict(document["config"]),
                throughput=float(document["throughput"]),
                source=str(document.get("source", "")),
            )
        except (KeyError, TypeError, ValueError, OptimizerError) as error:
            raise StorageError(f"malformed training pair: {error}")


def dedup_pairs(pairs: list[TrainingPair]) -> list[TrainingPair]:
    """Collapse duplicate (signature, knobs) rows, keeping the fastest.

    Fingerprint collisions — two knowledge entries or corpus rows with
    the same signature and knob values but different measured
    throughput — are resolved toward the larger throughput (the less
    interfered measurement), in one deterministic pass.
    """
    best: dict[tuple, TrainingPair] = {}
    for pair in pairs:
        key = pair.key()
        kept = best.get(key)
        if kept is None or pair.throughput > kept.throughput:
            best[key] = pair
    return list(best.values())


def mine_knowledge(knowledge) -> list[TrainingPair]:
    """Harvest training pairs from a :class:`TuningKnowledgeBase`.

    Every entry contributes its per-trial observations (config dict plus
    measured throughput, recorded since the surrogate landed); entries
    written before observations existed contribute nothing. Malformed
    observation rows are skipped — an empty or corrupt base degrades to
    an empty training set, never to an exception, so the search falls
    back to the cold path exactly as if no knowledge existed.
    """
    pairs: list[TrainingPair] = []
    for entry in getattr(knowledge, "entries", ()):
        for raw in getattr(entry, "observations", ()):
            try:
                pairs.append(
                    TrainingPair(
                        signature=entry.signature,
                        config=dict(raw["config"]),
                        throughput=float(raw["throughput"]),
                        source=f"kb:{entry.workload or 'unknown'}",
                    )
                )
            except (KeyError, TypeError, ValueError, OptimizerError):
                continue
    return dedup_pairs(pairs)


def load_corpus(path: str | Path) -> list[TrainingPair]:
    """Load the committed bench corpus of training pairs.

    The corpus is a JSON document (``tools/gen_surrogate_corpus.py``
    writes it, ``benchmarks/corpus/surrogate_corpus.json`` is the
    committed instance). A missing or unparsable file and malformed
    rows all degrade to fewer pairs rather than an error — the corpus,
    like the knowledge base, is an optimization, never a dependency.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    if not isinstance(document, dict):
        return []
    pairs: list[TrainingPair] = []
    for raw in document.get("pairs", []):
        try:
            pairs.append(TrainingPair.from_document(raw))
        except StorageError:
            continue
    return dedup_pairs(pairs)


@dataclass
class RidgeModel:
    """Closed-form ridge regression over standardized features.

    Fits ``w = argmin ||Zw - y||^2 + l2 ||w||^2`` (bias unpenalized) by
    solving the normal equations — one ``np.linalg.solve`` call, fully
    deterministic. Features are standardized per column so the single
    ``l2`` applies evenly to log-scaled knobs and 0/1 buckets alike.
    """

    l2: float = 1e-2
    _mean: np.ndarray | None = None
    _scale: np.ndarray | None = None
    _weights: np.ndarray | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Fit on an (n, d) feature matrix and length-n target vector."""
        self._mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        standardized = (features - self._mean) / self._scale
        n, d = standardized.shape
        design = np.hstack([np.ones((n, 1)), standardized])
        penalty = self.l2 * np.eye(d + 1)
        penalty[0, 0] = 0.0  # never shrink the bias
        gram = design.T @ design + penalty
        self._weights = np.linalg.solve(gram, design.T @ targets)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for an (n, d) feature matrix."""
        if self._weights is None:
            raise OptimizerError("ridge model is not fitted")
        standardized = (features - self._mean) / self._scale
        design = np.hstack([np.ones((len(standardized), 1)), standardized])
        return design @ self._weights

    def to_document(self) -> dict:
        """Serialize the fitted weights (part of the model dump)."""
        if self._weights is None:
            raise OptimizerError("ridge model is not fitted")
        return {
            "kind": "ridge",
            "l2": self.l2,
            "mean": [round(v, 12) for v in self._mean.tolist()],
            "scale": [round(v, 12) for v in self._scale.tolist()],
            "weights": [round(v, 12) for v in self._weights.tolist()],
        }


@dataclass
class StumpModel:
    """Gradient-boosted depth-1 stumps — the optional non-linear variant.

    Each round greedily picks the (feature, threshold) split minimizing
    squared error on the residuals, with thresholds drawn from midpoints
    of consecutive sorted unique feature values. Ties break toward the
    lowest feature index, then the lowest threshold, so fitting is a
    deterministic function of the training set; no sampling is involved.
    """

    rounds: int = 48
    learning_rate: float = 0.3
    _base: float = 0.0
    _stumps: list[tuple[int, float, float, float]] = field(default_factory=list)
    _fitted: bool = False

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Boost ``rounds`` stumps against the residual vector."""
        self._base = float(targets.mean())
        self._stumps = []
        residual = targets - self._base
        n, d = features.shape
        for _ in range(self.rounds):
            best: tuple[float, int, float, float, float] | None = None
            for j in range(d):
                column = features[:, j]
                values = np.unique(column)
                if len(values) < 2:
                    continue
                for threshold in (values[:-1] + values[1:]) / 2.0:
                    left = column <= threshold
                    left_mean = float(residual[left].mean())
                    right_mean = float(residual[~left].mean())
                    fit_values = np.where(left, left_mean, right_mean)
                    sse = float(((residual - fit_values) ** 2).sum())
                    if best is None or sse < best[0] - 1e-12:
                        best = (sse, j, float(threshold), left_mean, right_mean)
            if best is None:
                break
            _, j, threshold, left_mean, right_mean = best
            self._stumps.append(
                (j, threshold, self.learning_rate * left_mean,
                 self.learning_rate * right_mean)
            )
            column = features[:, j]
            residual = residual - np.where(
                column <= threshold,
                self.learning_rate * left_mean,
                self.learning_rate * right_mean,
            )
        self._fitted = True

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for an (n, d) feature matrix."""
        if not self._fitted:
            raise OptimizerError("stump model is not fitted")
        out = np.full(len(features), self._base, dtype=np.float64)
        for j, threshold, left_value, right_value in self._stumps:
            out += np.where(features[:, j] <= threshold, left_value, right_value)
        return out

    def to_document(self) -> dict:
        """Serialize the boosted stumps (part of the model dump)."""
        if not self._fitted:
            raise OptimizerError("stump model is not fitted")
        return {
            "kind": "stumps",
            "rounds": self.rounds,
            "learning_rate": self.learning_rate,
            "base": round(self._base, 12),
            "stumps": [
                [j, round(t, 12), round(lv, 12), round(rv, 12)]
                for j, t, lv, rv in self._stumps
            ],
        }


@dataclass
class SurrogateModel:
    """The learned performance model the search strategies consult.

    Wraps one regressor (``kind="ridge"`` or ``"stumps"``) over the
    shared feature schema, holds the deduplicated training set, and
    tracks its own accuracy: every real trial folded back in via
    :meth:`observe` first scores the model's prediction into the
    ``repro_optimizer_surrogate_rel_error`` histogram. Targets are
    log-throughput, so multiplicative workload differences become
    additive offsets the regressor can absorb.
    """

    kind: str = "ridge"
    l2: float = 1e-2
    rounds: int = 48
    learning_rate: float = 0.3
    min_pairs: int = MIN_TRAINING_PAIRS
    _pairs: list[TrainingPair] = field(default_factory=list)
    _model: RidgeModel | StumpModel | None = None
    _observations: int = 0
    _refits: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("ridge", "stumps"):
            raise OptimizerError(
                f"unknown surrogate kind {self.kind!r}; use ridge or stumps"
            )
        if self.min_pairs < 2:
            raise OptimizerError("min_pairs must be at least 2")

    # --- training set ------------------------------------------------------

    @property
    def pairs(self) -> tuple[TrainingPair, ...]:
        """The current deduplicated training set."""
        return tuple(self._pairs)

    @property
    def ready(self) -> bool:
        """Whether the model is fitted and trusted to rank candidates."""
        return self._model is not None

    def add_pairs(self, pairs: list[TrainingPair]) -> int:
        """Merge pairs into the training set; returns pairs now held."""
        self._pairs = dedup_pairs(self._pairs + list(pairs))
        _SURROGATE_PAIRS.set(len(self._pairs))
        return len(self._pairs)

    def observe(
        self,
        signature: frozenset[str],
        config: PipelineConfig | dict,
        throughput: float,
        source: str = "trial",
    ) -> None:
        """Fold one completed real trial back into the training set.

        When the model is already fitted, the trial first grades the
        prediction it would have made (the error histogram), then joins
        the training set for the next refit.
        """
        if self.ready:
            predicted = self.predict(signature, config)
            _SURROGATE_ERROR.observe(abs(predicted - throughput) / throughput)
        knobs = {
            knob: (
                bool(_knob_value(config, knob))
                if knob == "vectorized_preprocess"
                else int(_knob_value(config, knob))
            )
            for knob in TUNED_KNOBS
        }
        self._observations += 1
        self.add_pairs(
            [TrainingPair(signature=signature, config=knobs,
                          throughput=throughput, source=source)]
        )

    # --- fitting and prediction --------------------------------------------

    def refit(self) -> bool:
        """(Re)fit on the current training set; False when too small."""
        if len(self._pairs) < self.min_pairs:
            return False
        features = np.array(
            [feature_vector(pair.signature, pair.config) for pair in self._pairs]
        )
        targets = np.log(np.array([pair.throughput for pair in self._pairs]))
        if self.kind == "ridge":
            model: RidgeModel | StumpModel = RidgeModel(l2=self.l2)
        else:
            model = StumpModel(rounds=self.rounds, learning_rate=self.learning_rate)
        model.fit(features, targets)
        self._model = model
        self._refits += 1
        _SURROGATE_REFITS.inc()
        return True

    def predict(
        self, signature: frozenset[str], config: PipelineConfig | dict
    ) -> float:
        """Predicted throughput (steps/s) for one candidate."""
        if self._model is None:
            raise OptimizerError("surrogate is not fitted; call refit() first")
        features = feature_vector(signature, config)[np.newaxis, :]
        return float(np.exp(self._model.predict(features)[0]))

    def rank(
        self, signature: frozenset[str], configs: list[PipelineConfig]
    ) -> list[int]:
        """Candidate indices ordered fastest-predicted first.

        Ties (and the not-ready fallback, which preserves submission
        order) break by candidate index, keeping the ordering a pure
        function of the inputs.
        """
        if not self.ready:
            _SURROGATE_RANKINGS.labels(outcome="cold").inc()
            return list(range(len(configs)))
        _SURROGATE_RANKINGS.labels(outcome="ranked").inc()
        predictions = [self.predict(signature, config) for config in configs]
        return sorted(range(len(configs)), key=lambda i: (-predictions[i], i))

    # --- reporting ---------------------------------------------------------

    def training_digest(self) -> str:
        """Stable hash of the training set (for dump comparisons)."""
        canonical = json.dumps(
            [pair.to_document() for pair in
             sorted(self._pairs, key=lambda p: p.key())],
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def to_document(self) -> dict:
        """Serialize the model for ``tpupoint tune --surrogate-out``.

        The dump is bit-identical across runs that saw the same training
        pairs in any order — CI's surrogate-smoke job diffs two of them.
        """
        document = {
            "version": 1,
            "feature_schema": FEATURE_SCHEMA_VERSION,
            "kind": self.kind,
            "ready": self.ready,
            "pairs": len(self._pairs),
            "observations": self._observations,
            "refits": self._refits,
            "training_digest": self.training_digest(),
        }
        if self._model is not None:
            document["model"] = self._model.to_document()
        return document


def build_surrogate(
    knowledge=None,
    corpus: str | Path | None = None,
    kind: str = "ridge",
    extra_pairs: list[TrainingPair] | None = None,
) -> SurrogateModel:
    """Assemble and fit a surrogate from every available source.

    Mines the knowledge base (when given), loads the bench corpus (when
    given), merges any extra pairs — e.g. fleet-shared rows from
    :meth:`repro.serve.FleetService.surrogate_pairs` — and fits. With
    too little data the model comes back not-ready and the strategy
    runs its cold path; nothing here raises on empty or corrupt inputs.
    """
    model = SurrogateModel(kind=kind)
    pairs: list[TrainingPair] = []
    if knowledge is not None:
        pairs.extend(mine_knowledge(knowledge))
    if corpus is not None:
        pairs.extend(load_corpus(corpus))
    if extra_pairs:
        pairs.extend(extra_pairs)
    if pairs:
        model.add_pairs(pairs)
    model.refit()
    return model
