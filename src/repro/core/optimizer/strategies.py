"""Pluggable search strategies for the autotuning engine.

The paper's tuner is a single-direction hill climb (Section VII-B);
this module generalizes it into a strategy interface so the engine can
trade trials for coverage:

* :class:`HillClimbStrategy` — the paper's one-parameter-at-a-time
  directional walk, re-expressed over the offline trial evaluator.
* :class:`SimulatedAnnealingStrategy` — seeded Metropolis search that
  proposes a *batch* of neighbor configurations per temperature level.
  Proposals and acceptance draws come from one driver-side RNG stream
  consumed in a fixed order, while the batch's measurements fan out on
  the :mod:`repro.parallel` pool — so any worker count replays the
  same search bit-for-bit.
* :class:`SuccessiveHalvingStrategy` — racing: a seeded population of
  candidate configurations is measured concurrently on a small step
  budget, the top ``1/eta`` survive to a rung with ``eta``× the
  budget, and so on until one remains. Warm starts slot naturally into
  racing: the start configuration always races at index 0, so a good
  prior is confirmed on the very first trial.
* :class:`SurrogateStrategy` — surrogate-guided successive halving: a
  learned performance model (:mod:`repro.core.optimizer.surrogate`)
  ranks every candidate by *predicted* throughput and only the top
  fraction per rung is measured for real; every completed real trial
  is folded back into the model (online refit). Real measurements stay
  the ground truth — survivors are picked from measured throughput,
  and the quality guard runs on every real trial — so a wrong
  prediction costs coverage, never correctness.

Determinism contract (pinned by ``tests/property/test_prop_autotune``):
a strategy may only draw randomness from its driver RNG (sequential,
worker-independent) and from per-trial substreams named by the trial
key — never from completion order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Protocol, Sequence

from repro import obs
from repro.core.optimizer.parameters import AdjustableParameter
from repro.core.optimizer.surrogate import SurrogateModel
from repro.errors import ConfigurationError, OptimizerError
from repro.host.pipeline import PipelineConfig
from repro.rng import stream as rng_stream

_STRATEGY_TRIALS = obs.counter(
    "repro_optimizer_strategy_trials_total",
    "Autotune trials measured, by search strategy.",
    labels=("strategy",),
)
_SURROGATE_GUIDANCE = obs.counter(
    "repro_optimizer_surrogate_guidance_total",
    "Surrogate-ranked rungs, by whether the predicted-top candidate "
    "was confirmed fastest by the real measurements (hit) or not (miss).",
    labels=("outcome",),
)
_SURROGATE_PRUNED = obs.counter(
    "repro_optimizer_surrogate_pruned_trials_total",
    "Real trials skipped because the surrogate ranked the candidate "
    "outside the measured frontier.",
).labels()

#: Relative improvement a hill-climb move must clear (matches the online
#: tuner's jitter guard).
MIN_IMPROVEMENT = 1.02


@dataclass(frozen=True)
class CandidateTrial:
    """One measured candidate configuration.

    Unlike the online tuner's :class:`~repro.core.optimizer.tuner.TuningTrial`
    (which names the single parameter being moved), a candidate trial
    carries the whole configuration — annealing and racing move several
    knobs at once.
    """

    key: str
    config: PipelineConfig
    steps: int
    elapsed_us: float

    def __post_init__(self) -> None:
        if self.steps <= 0 or self.elapsed_us <= 0:
            raise OptimizerError(
                f"degenerate trial {self.key!r}: steps={self.steps}, "
                f"elapsed_us={self.elapsed_us}; invalid measurements must "
                "be rejected, not recorded"
            )

    @property
    def throughput(self) -> float:
        """Training steps per second during the trial."""
        return self.steps / (self.elapsed_us / 1e6)


class TrialEvaluator(Protocol):
    """Measures candidate configurations.

    ``evaluate`` receives ``(key, config, steps)`` requests and returns
    one :class:`CandidateTrial` per request *in request order*. The key
    names the trial's RNG substream, so a given ``(key, config, steps)``
    always measures identically — the property that lets strategies fan
    evaluation out over a worker pool without losing determinism.
    """

    def evaluate(
        self, requests: Sequence[tuple[str, PipelineConfig, int]]
    ) -> list[CandidateTrial]:
        """Measure the requested candidates, in request order."""
        ...


@dataclass
class SearchOutcome:
    """What one strategy run measured and concluded."""

    strategy: str
    initial_config: PipelineConfig
    best_config: PipelineConfig
    baseline_throughput: float
    best_throughput: float
    trials: list[CandidateTrial] = field(default_factory=list)

    @property
    def steps_consumed(self) -> int:
        """Total training steps spent across every trial."""
        return sum(trial.steps for trial in self.trials)

    @property
    def improvement(self) -> float:
        """Best over baseline throughput (>1 means faster)."""
        if self.baseline_throughput <= 0:
            return 1.0
        return self.best_throughput / self.baseline_throughput

    def trials_to_config(self, config: PipelineConfig) -> int | None:
        """1-based index of the first trial that measured ``config``."""
        for index, trial in enumerate(self.trials, start=1):
            if trial.config == config:
                return index
        return None

    @property
    def trials_to_best(self) -> int:
        """Trials spent before the winning configuration was measured."""
        found = self.trials_to_config(self.best_config)
        return found if found is not None else len(self.trials)


def _apply(config: PipelineConfig, name: str, value: int) -> PipelineConfig:
    """Set one knob, preserving bool-typed fields (the map/batch toggle)."""
    current = getattr(config, name)
    return config.with_updates(**{name: bool(value) if isinstance(current, bool) else value})


def _perturb(
    config: PipelineConfig,
    parameters: Sequence[AdjustableParameter],
    rng,
    moves: int = 1,
) -> PipelineConfig:
    """A random neighbor of ``config``: ``moves`` single-knob steps."""
    out = config
    for _ in range(max(moves, 1)):
        parameter = parameters[int(rng.integers(len(parameters)))]
        candidates = parameter.candidate_values(int(getattr(out, parameter.name)))
        if not candidates:
            continue
        out = _apply(out, parameter.name, candidates[int(rng.integers(len(candidates)))])
    return out


class SearchStrategy:
    """Base class: one search over the adjustable-parameter space."""

    name = "abstract"

    def search(
        self,
        parameters: Sequence[AdjustableParameter],
        initial_config: PipelineConfig,
        evaluator: TrialEvaluator,
        seed: int,
    ) -> SearchOutcome:
        """Run one full search and return what it measured and chose."""
        raise NotImplementedError

    # --- shared plumbing ---------------------------------------------------

    def _measure(
        self,
        evaluator: TrialEvaluator,
        requests: Sequence[tuple[str, PipelineConfig, int]],
        log: list[CandidateTrial],
    ) -> list[CandidateTrial]:
        """Evaluate a batch, append to the trial log, count in obs."""
        trials = evaluator.evaluate(list(requests))
        log.extend(trials)
        _STRATEGY_TRIALS.labels(strategy=self.name).inc(len(trials))
        return trials


@dataclass
class HillClimbStrategy(SearchStrategy):
    """The paper's directional hill climb over the offline evaluator.

    One parameter at a time: try each neighbor of the current best; on
    an accepted move keep stepping in the same direction until it stops
    helping. Sequential by construction — each trial depends on the
    previous accept — so it gains nothing from extra workers; it is the
    reference strategy warm starts and the racers are compared against.
    """

    trial_steps: int = 6
    min_improvement: float = MIN_IMPROVEMENT

    name = "hill-climb"

    def __post_init__(self) -> None:
        if self.trial_steps <= 0:
            raise OptimizerError("trial_steps must be positive")
        if self.min_improvement < 1.0:
            raise OptimizerError("min_improvement must be >= 1.0")

    def search(self, parameters, initial_config, evaluator, seed) -> SearchOutcome:
        """One-parameter-at-a-time directional walk (the paper's tuner)."""
        log: list[CandidateTrial] = []
        serial = 0

        def measure(config: PipelineConfig) -> CandidateTrial:
            nonlocal serial
            serial += 1
            return self._measure(
                evaluator, [(f"hill:{serial}", config, self.trial_steps)], log
            )[0]

        baseline = measure(initial_config)
        best, best_throughput = initial_config, baseline.throughput

        for parameter in parameters:
            start_value = int(getattr(best, parameter.name))
            is_bool = isinstance(getattr(best, parameter.name), bool)
            for first_value in parameter.candidate_values(start_value):
                value, anchor = first_value, start_value
                while True:
                    candidate = _apply(best, parameter.name, value)
                    trial = measure(candidate)
                    if trial.throughput < best_throughput * self.min_improvement:
                        break
                    best, best_throughput = candidate, trial.throughput
                    if is_bool:
                        break
                    direction = 1 if value > anchor else -1
                    onward = [
                        v
                        for v in parameter.candidate_values(value)
                        if (v - value) * direction > 0
                    ]
                    if not onward:
                        break
                    anchor, value = value, onward[0]

        return SearchOutcome(
            strategy=self.name,
            initial_config=initial_config,
            best_config=best,
            baseline_throughput=baseline.throughput,
            best_throughput=best_throughput,
            trials=log,
        )


@dataclass
class SimulatedAnnealingStrategy(SearchStrategy):
    """Seeded batched Metropolis search.

    Each round proposes ``batch`` random neighbors of the current
    configuration (driver RNG), measures them concurrently, then folds
    them back in proposal order: an improvement is always accepted, a
    regression with probability ``exp(relative_loss / temperature)``.
    The temperature cools geometrically per round, narrowing the walk
    from exploration to exploitation.
    """

    rounds: int = 6
    batch: int = 4
    trial_steps: int = 6
    initial_temperature: float = 0.08
    cooling: float = 0.6

    name = "annealing"

    def __post_init__(self) -> None:
        if self.rounds <= 0 or self.batch <= 0 or self.trial_steps <= 0:
            raise OptimizerError("rounds, batch, and trial_steps must be positive")
        if self.initial_temperature <= 0 or not 0.0 < self.cooling < 1.0:
            raise OptimizerError("temperature must be positive and cooling in (0, 1)")

    def search(self, parameters, initial_config, evaluator, seed) -> SearchOutcome:
        """Seeded Metropolis search over batched neighbor proposals."""
        rng = rng_stream("optimizer:strategy:annealing", seed)
        log: list[CandidateTrial] = []
        baseline = self._measure(
            evaluator, [("anneal:baseline", initial_config, self.trial_steps)], log
        )[0]
        current, current_throughput = initial_config, baseline.throughput
        best, best_throughput = current, current_throughput

        temperature = self.initial_temperature
        for round_index in range(self.rounds):
            requests = []
            for slot in range(self.batch):
                proposal = _perturb(current, parameters, rng)
                requests.append(
                    (f"anneal:r{round_index}:c{slot}", proposal, self.trial_steps)
                )
            for trial in self._measure(evaluator, requests, log):
                gain = trial.throughput / current_throughput - 1.0
                accept = gain > 0 or float(rng.random()) < math.exp(gain / temperature)
                if accept:
                    current, current_throughput = trial.config, trial.throughput
                if trial.throughput > best_throughput:
                    best, best_throughput = trial.config, trial.throughput
            temperature *= self.cooling

        return SearchOutcome(
            strategy=self.name,
            initial_config=initial_config,
            best_config=best,
            baseline_throughput=baseline.throughput,
            best_throughput=best_throughput,
            trials=log,
        )


@dataclass
class SuccessiveHalvingStrategy(SearchStrategy):
    """Racing: measure a population cheaply, halve, re-measure deeper.

    Rung ``r`` measures every survivor for ``trial_steps * eta**r``
    steps and keeps the top ``1/eta`` (ties broken by submission order,
    never completion order). The start configuration always occupies
    population slot 0; the remaining slots are seeded perturbations of
    it, so the race explores *around* the start point — which is what
    makes a knowledge-base warm start pay: a near-optimal prior is
    measured first and defended by every later rung.
    """

    population: int = 8
    eta: int = 2
    trial_steps: int = 4
    exploration_moves: int = 2

    name = "racing"

    def __post_init__(self) -> None:
        if self.population < 2:
            raise OptimizerError("racing needs a population of at least 2")
        if self.eta < 2:
            raise OptimizerError("eta must be at least 2")
        if self.trial_steps <= 0 or self.exploration_moves <= 0:
            raise OptimizerError("trial_steps and exploration_moves must be positive")

    def _population(self, parameters, initial_config, seed) -> list[PipelineConfig]:
        rng = rng_stream("optimizer:strategy:racing", seed)
        population = [initial_config]
        attempts = 0
        while len(population) < self.population and attempts < self.population * 20:
            attempts += 1
            moves = 1 + int(rng.integers(self.exploration_moves))
            candidate = _perturb(initial_config, parameters, rng, moves=moves)
            if candidate not in population:
                population.append(candidate)
        return population

    def search(self, parameters, initial_config, evaluator, seed) -> SearchOutcome:
        """Race the population through budget-doubling elimination rungs."""
        log: list[CandidateTrial] = []
        survivors = self._population(parameters, initial_config, seed)
        baseline_throughput = 0.0
        ranked: list[tuple[PipelineConfig, float]] = []

        rung = 0
        while True:
            steps = self.trial_steps * self.eta**rung
            requests = [
                (f"race:r{rung}:c{slot}", config, steps)
                for slot, config in enumerate(survivors)
            ]
            trials = self._measure(evaluator, requests, log)
            if rung == 0:
                baseline_throughput = trials[0].throughput
            ranked = sorted(
                ((trial.config, trial.throughput) for trial in trials),
                key=lambda pair: -pair[1],
            )
            if len(survivors) <= 1:
                break
            keep = max(1, math.ceil(len(survivors) / self.eta))
            survivors = [config for config, _ in ranked[:keep]]
            rung += 1

        best_config, best_throughput = ranked[0]
        return SearchOutcome(
            strategy=self.name,
            initial_config=initial_config,
            best_config=best_config,
            baseline_throughput=baseline_throughput,
            best_throughput=best_throughput,
            trials=log,
        )


@dataclass
class SurrogateStrategy(SearchStrategy):
    """Surrogate-guided successive halving over the predicted frontier.

    The population seeds like racing's (start configuration at slot 0,
    known-good prior configurations next, seeded perturbations filling
    the rest), but each rung first asks the
    :class:`~repro.core.optimizer.surrogate.SurrogateModel` to rank the
    survivors by predicted throughput and measures only the top
    ``measure_fraction`` (at least ``min_measure``) for real — the
    predicted-best candidate is always *trial 1* of the rung. Rung 0
    additionally always measures the start configuration, anchoring the
    outcome's baseline in a real measurement.

    Every real trial is folded back into the model and the model refits
    once per rung (online refit) — fitting happens driver-side on
    submission-ordered results, so any worker count replays the same
    search bit-for-bit. With a not-ready model (empty knowledge base,
    corrupt corpus, too few pairs) every survivor is measured: the
    strategy degrades to plain racing, never to an error.
    """

    population: int = 12
    eta: int = 2
    trial_steps: int = 4
    exploration_moves: int = 2
    measure_fraction: float = 0.5
    min_measure: int = 2
    model: SurrogateModel | None = None
    signature: frozenset = frozenset()
    priors: tuple = ()

    name = "surrogate"

    def __post_init__(self) -> None:
        if self.population < 2:
            raise OptimizerError("surrogate search needs a population of at least 2")
        if self.eta < 2:
            raise OptimizerError("eta must be at least 2")
        if self.trial_steps <= 0 or self.exploration_moves <= 0:
            raise OptimizerError("trial_steps and exploration_moves must be positive")
        if not 0.0 < self.measure_fraction <= 1.0:
            raise OptimizerError("measure_fraction must be in (0, 1]")
        if self.min_measure < 1:
            raise OptimizerError("min_measure must be at least 1")

    def _population(self, parameters, initial_config, seed) -> list[PipelineConfig]:
        """Start config, then valid prior configs, then perturbations."""
        population = [initial_config]
        for prior in self.priors:
            try:
                candidate = initial_config.with_updates(**dict(prior))
            except (ConfigurationError, TypeError):
                continue
            if candidate not in population:
                population.append(candidate)
            if len(population) >= self.population:
                break
        rng = rng_stream("optimizer:strategy:surrogate", seed)
        attempts = 0
        while len(population) < self.population and attempts < self.population * 20:
            attempts += 1
            moves = 1 + int(rng.integers(self.exploration_moves))
            candidate = _perturb(initial_config, parameters, rng, moves=moves)
            if candidate not in population:
                population.append(candidate)
        return population

    def search(self, parameters, initial_config, evaluator, seed) -> SearchOutcome:
        """Racing over the surrogate's predicted frontier, refit per rung."""
        model = self.model if self.model is not None else SurrogateModel()
        # Without a phase fingerprint the search still learns online; the
        # placeholder keeps its trials in one bucket of the feature hash.
        signature = self.signature or frozenset({"<unfingerprinted>"})
        log: list[CandidateTrial] = []
        survivors = self._population(parameters, initial_config, seed)
        baseline_throughput = 0.0
        ranked: list[tuple[PipelineConfig, float]] = []

        rung = 0
        while True:
            steps = self.trial_steps * self.eta**rung
            order = model.rank(signature, survivors)
            if model.ready and len(survivors) > 1:
                frontier = min(
                    len(survivors),
                    max(self.min_measure,
                        math.ceil(len(survivors) * self.measure_fraction)),
                )
            else:
                frontier = len(survivors)
            chosen = order[:frontier]
            if rung == 0 and 0 not in chosen:
                chosen.append(0)  # always ground the baseline in a real trial
            pruned = len(survivors) - len(chosen)
            if pruned > 0:
                _SURROGATE_PRUNED.inc(pruned)
            requests = [
                (f"surrogate:r{rung}:c{slot}", survivors[index], steps)
                for slot, index in enumerate(chosen)
            ]
            trials = self._measure(evaluator, requests, log)
            if rung == 0:
                for index, trial in zip(chosen, trials):
                    if index == 0:
                        baseline_throughput = trial.throughput
            if model.ready and len(trials) > 1:
                fastest = max(range(len(trials)),
                              key=lambda i: (trials[i].throughput, -i))
                outcome = "hit" if fastest == 0 else "miss"
                _SURROGATE_GUIDANCE.labels(outcome=outcome).inc()
            for trial in trials:
                model.observe(signature, trial.config, trial.throughput)
            model.refit()
            ranked = sorted(
                ((trial.config, trial.throughput) for trial in trials),
                key=lambda pair: -pair[1],
            )
            if len(survivors) <= 1:
                break
            keep = max(1, math.ceil(len(trials) / self.eta))
            survivors = [config for config, _ in ranked[:keep]]
            rung += 1

        best_config, best_throughput = ranked[0]
        return SearchOutcome(
            strategy=self.name,
            initial_config=initial_config,
            best_config=best_config,
            baseline_throughput=baseline_throughput,
            best_throughput=best_throughput,
            trials=log,
        )


#: Registry the CLI's ``--strategy`` flag and the engine resolve against.
STRATEGIES: dict[str, type[SearchStrategy]] = {
    HillClimbStrategy.name: HillClimbStrategy,
    SimulatedAnnealingStrategy.name: SimulatedAnnealingStrategy,
    SuccessiveHalvingStrategy.name: SuccessiveHalvingStrategy,
    SurrogateStrategy.name: SurrogateStrategy,
}


def build_strategy(name: str, **options) -> SearchStrategy:
    """Instantiate a registered strategy, validating its options."""
    cls = STRATEGIES.get(name)
    if cls is None:
        known = ", ".join(sorted(STRATEGIES))
        raise OptimizerError(f"unknown search strategy {name!r} (known: {known})")
    allowed = {f.name for f in fields(cls)}
    unknown = set(options) - allowed
    if unknown:
        raise OptimizerError(
            f"strategy {name!r} does not accept options {sorted(unknown)}"
        )
    return cls(**options)
