"""TPUPoint-Optimizer: automatic workload tuning, online and offline.

Two engines share the parameter space and quality control:

* :class:`TPUPointOptimizer` — the paper's online workflow (detect the
  critical phase mid-run, hill-climb the live pipeline, finish tuned).
* :func:`autotune` — the offline engine: pluggable search strategies
  (:data:`STRATEGIES`) over independent trial runs, warm-started from a
  phase-keyed :class:`TuningKnowledgeBase`.
"""

from repro.core.optimizer.autotune import (
    AutotuneOptions,
    AutotuneResult,
    EstimatorTrialEvaluator,
    autotune,
    detect_phase_signature,
)
from repro.core.optimizer.detector import CRITICAL_PATTERN, CriticalPhaseDetector
from repro.core.optimizer.instrument import InstrumentationReport, ProgramInstrumenter
from repro.core.optimizer.knowledge import (
    KnowledgeEntry,
    KnowledgeMatch,
    TuningKnowledgeBase,
)
from repro.core.optimizer.optimizer import (
    OptimizationResult,
    OptimizerOptions,
    TPUPointOptimizer,
)
from repro.core.optimizer.parameters import AdjustableParameter, discover_parameters
from repro.core.optimizer.quality import OutputSignature, QualityController
from repro.core.optimizer.strategies import (
    STRATEGIES,
    CandidateTrial,
    HillClimbStrategy,
    SearchOutcome,
    SearchStrategy,
    SimulatedAnnealingStrategy,
    SuccessiveHalvingStrategy,
    SurrogateStrategy,
    build_strategy,
)
from repro.core.optimizer.surrogate import (
    FEATURE_SCHEMA_VERSION,
    RidgeModel,
    StumpModel,
    SurrogateModel,
    TrainingPair,
    build_surrogate,
    feature_vector,
    load_corpus,
    mine_knowledge,
)
from repro.core.optimizer.tuner import HillClimbTuner, TuningReport, TuningTrial

__all__ = [
    "CRITICAL_PATTERN",
    "FEATURE_SCHEMA_VERSION",
    "STRATEGIES",
    "AdjustableParameter",
    "AutotuneOptions",
    "AutotuneResult",
    "CandidateTrial",
    "CriticalPhaseDetector",
    "EstimatorTrialEvaluator",
    "HillClimbStrategy",
    "HillClimbTuner",
    "InstrumentationReport",
    "KnowledgeEntry",
    "KnowledgeMatch",
    "OptimizationResult",
    "OptimizerOptions",
    "OutputSignature",
    "ProgramInstrumenter",
    "QualityController",
    "RidgeModel",
    "SearchOutcome",
    "SearchStrategy",
    "SimulatedAnnealingStrategy",
    "StumpModel",
    "SuccessiveHalvingStrategy",
    "SurrogateModel",
    "SurrogateStrategy",
    "TPUPointOptimizer",
    "TrainingPair",
    "TuningKnowledgeBase",
    "TuningReport",
    "TuningTrial",
    "autotune",
    "build_strategy",
    "build_surrogate",
    "detect_phase_signature",
    "discover_parameters",
    "feature_vector",
    "load_corpus",
    "mine_knowledge",
]
