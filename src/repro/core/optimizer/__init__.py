"""TPUPoint-Optimizer: automatic online workload tuning."""

from repro.core.optimizer.detector import CRITICAL_PATTERN, CriticalPhaseDetector
from repro.core.optimizer.instrument import InstrumentationReport, ProgramInstrumenter
from repro.core.optimizer.optimizer import (
    OptimizationResult,
    OptimizerOptions,
    TPUPointOptimizer,
)
from repro.core.optimizer.parameters import AdjustableParameter, discover_parameters
from repro.core.optimizer.quality import OutputSignature, QualityController
from repro.core.optimizer.tuner import HillClimbTuner, TuningReport, TuningTrial

__all__ = [
    "CRITICAL_PATTERN",
    "AdjustableParameter",
    "CriticalPhaseDetector",
    "HillClimbTuner",
    "InstrumentationReport",
    "OptimizationResult",
    "OptimizerOptions",
    "OutputSignature",
    "ProgramInstrumenter",
    "QualityController",
    "TPUPointOptimizer",
    "TuningReport",
    "TuningTrial",
]
