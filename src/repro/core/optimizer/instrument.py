"""Program analysis and instrumentation.

Before tuning, TPUPoint-Optimizer analyzes the program between the
profiler's Start()/Stop() calls: it identifies the user-defined
adjustable parameters, captures the input/output contract, and
instruments the code to produce checkpoints ahead of the segments it
will tune so a bad adjustment can always be rolled back (Section VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.optimizer.parameters import AdjustableParameter, discover_parameters
from repro.core.optimizer.quality import OutputSignature, QualityController
from repro.runtime.estimator import TPUEstimator


@dataclass
class InstrumentationReport:
    """What program analysis found and what instrumentation did."""

    parameters: list[AdjustableParameter]
    signature: OutputSignature
    checkpoint_steps: list[int] = field(default_factory=list)

    @property
    def parameter_names(self) -> list[str]:
        """Names of the adjustable parameters that were discovered."""
        return [parameter.name for parameter in self.parameters]


class ProgramInstrumenter:
    """Analyzes and instruments one estimator's program."""

    def __init__(self, estimator: TPUEstimator):
        self._estimator = estimator
        self._report: InstrumentationReport | None = None
        self.quality = QualityController(estimator)

    def analyze(self) -> InstrumentationReport:
        """Discover adjustable parameters and capture the output contract."""
        if self._report is None:
            parameters = discover_parameters(self._estimator.current_pipeline_config())
            self._report = InstrumentationReport(
                parameters=parameters,
                signature=self.quality.reference,
            )
        return self._report

    def checkpoint_before_segment(self) -> None:
        """Write a checkpoint ahead of a segment about to be tuned."""
        report = self.analyze()
        session = self._estimator.session
        session.checkpoint_now()
        report.checkpoint_steps.append(session.global_step)
