"""Phase-keyed tuning knowledge base.

TPUPoint's phase detector already reduces a run to a handful of
repeating behaviors, each summarized by the operators that dominate it.
That summary doubles as a *key*: two runs whose critical phases execute
the same top operators are, for pipeline-tuning purposes, the same
workload — so a configuration that won the search once should seed the
search next time instead of restarting from defaults.

Entries map a **phase signature** (the top-K operator names of the
critical phase, compared with the paper's Equation 1 similarity — the
same measure OLS uses to segment phases) to the best configuration a
finished search found, together with how much it improved and how many
trials it cost. Lookups return the nearest stored signature above a
similarity threshold, or nothing — a miss means the engine starts cold
from defaults, exactly as if the knowledge base did not exist.

Persistence goes through :class:`repro.storage.JsonDocumentStore`, so a
knowledge directory can be shared between runs, between tenants of the
fleet service (``FleetService.tuning_priors``), or shipped around as a
plain JSON file. A corrupt store degrades to an empty prior set rather
than failing the run: warm starts are an optimization, never a
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.core.analyzer.ols import DEFAULT_SIMILARITY_THRESHOLD, step_similarity
from repro.errors import ConfigurationError, OptimizerError, StorageError
from repro.host.pipeline import PipelineConfig
from repro.storage import JsonDocumentStore

_DOCUMENT = "tuning_knowledge"

_KB_LOOKUPS = obs.counter(
    "repro_optimizer_kb_lookups_total",
    "Knowledge-base lookups, by outcome (hit or miss).",
    labels=("outcome",),
)
_KB_ENTRIES = obs.gauge(
    "repro_optimizer_kb_entries",
    "Entries held by the most recently opened tuning knowledge base.",
).labels()


@dataclass(frozen=True)
class KnowledgeEntry:
    """One remembered search result, keyed by phase signature."""

    signature: frozenset[str]
    config: dict[str, object]
    improvement: float
    trials: int
    workload: str = ""

    def __post_init__(self) -> None:
        if not self.signature:
            raise OptimizerError("knowledge entry needs a non-empty phase signature")
        if self.trials <= 0:
            raise OptimizerError("knowledge entry needs a positive trial count")

    def pipeline_config(self) -> PipelineConfig:
        """Rebuild the stored configuration.

        Raises :class:`~repro.errors.ConfigurationError` when the stored
        knobs no longer validate (e.g. a schema change since the entry
        was written); callers treat that as a miss.
        """
        return self.apply_to(PipelineConfig())

    def apply_to(self, base: PipelineConfig) -> PipelineConfig:
        """Overlay the stored knobs onto ``base``.

        Knobs outside the stored set (e.g. jitter) keep ``base``'s
        values, so a warm start never disturbs workload-specific
        settings the search did not touch.
        """
        try:
            return base.with_updates(**self.config)
        except TypeError as error:
            raise ConfigurationError(f"stored config has unknown knobs: {error}")

    def to_document(self) -> dict:
        return {
            "signature": sorted(self.signature),
            "config": dict(self.config),
            "improvement": self.improvement,
            "trials": self.trials,
            "workload": self.workload,
        }

    @classmethod
    def from_document(cls, document: dict) -> KnowledgeEntry:
        try:
            return cls(
                signature=frozenset(document["signature"]),
                config=dict(document["config"]),
                improvement=float(document["improvement"]),
                trials=int(document["trials"]),
                workload=str(document.get("workload", "")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StorageError(f"malformed knowledge entry: {error}")


@dataclass(frozen=True)
class KnowledgeMatch:
    """A lookup hit: the entry plus how closely its signature matched."""

    entry: KnowledgeEntry
    similarity: float

    @property
    def config(self) -> PipelineConfig:
        return self.entry.pipeline_config()


@dataclass
class TuningKnowledgeBase:
    """In-memory prior set with optional JSON persistence."""

    store: JsonDocumentStore | None = None
    _entries: list[KnowledgeEntry] = field(default_factory=list)

    # --- construction -----------------------------------------------------

    @classmethod
    def open(cls, directory: str | Path) -> TuningKnowledgeBase:
        """Load (or create) the knowledge base under ``directory``.

        A corrupt document logs as an empty prior set — the warm start
        is skipped, the run proceeds cold.
        """
        store = JsonDocumentStore(directory)
        kb = cls(store=store)
        try:
            document = store.load(_DOCUMENT)
        except StorageError:
            document = None
        if document is not None:
            for raw in document.get("entries", []):
                try:
                    kb._entries.append(KnowledgeEntry.from_document(raw))
                except StorageError:
                    continue
        _KB_ENTRIES.set(len(kb._entries))
        return kb

    # --- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[KnowledgeEntry, ...]:
        return tuple(self._entries)

    def lookup(
        self,
        signature: frozenset[str],
        threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
    ) -> KnowledgeMatch | None:
        """Nearest stored entry whose signature clears ``threshold``.

        Similarity is Equation 1 over operator-name sets; ties prefer
        the entry with the larger recorded improvement, so the most
        valuable prior wins when several phases look alike.
        """
        if not signature:
            raise OptimizerError("cannot look up an empty phase signature")
        best: KnowledgeMatch | None = None
        for entry in self._entries:
            similarity = step_similarity(signature, entry.signature)
            if similarity < threshold:
                continue
            if (
                best is None
                or similarity > best.similarity
                or (
                    similarity == best.similarity
                    and entry.improvement > best.entry.improvement
                )
            ):
                best = KnowledgeMatch(entry=entry, similarity=similarity)
        _KB_LOOKUPS.labels(outcome="hit" if best else "miss").inc()
        return best

    def nearest(self, signature: frozenset[str]) -> KnowledgeMatch | None:
        """Closest stored entry regardless of threshold; None when empty.

        The health monitor's drift detector uses this: it wants the
        *distance* to the nearest fingerprint, not a warm-start hit, so
        no threshold applies and the lookup counters stay untouched
        (a monitoring scrape must not skew the hit/miss telemetry).
        """
        if not signature:
            raise OptimizerError("cannot look up an empty phase signature")
        best: KnowledgeMatch | None = None
        for entry in self._entries:
            similarity = step_similarity(signature, entry.signature)
            if best is None or similarity > best.similarity or (
                similarity == best.similarity
                and entry.improvement > best.entry.improvement
            ):
                best = KnowledgeMatch(entry=entry, similarity=similarity)
        return best

    # --- updates ----------------------------------------------------------

    def record(self, entry: KnowledgeEntry) -> None:
        """Insert or merge one search result.

        An exact-signature duplicate keeps whichever result improved
        more — re-running a workload never degrades its prior.
        """
        for index, existing in enumerate(self._entries):
            if existing.signature == entry.signature:
                if entry.improvement > existing.improvement:
                    self._entries[index] = entry
                break
        else:
            self._entries.append(entry)
        _KB_ENTRIES.set(len(self._entries))

    def save(self) -> Path | None:
        """Persist to the backing store; no-op for in-memory bases."""
        if self.store is None:
            return None
        document = {
            "version": 1,
            "entries": [entry.to_document() for entry in self._entries],
        }
        return self.store.save(_DOCUMENT, document)
