"""Phase-keyed tuning knowledge base.

TPUPoint's phase detector already reduces a run to a handful of
repeating behaviors, each summarized by the operators that dominate it.
That summary doubles as a *key*: two runs whose critical phases execute
the same top operators are, for pipeline-tuning purposes, the same
workload — so a configuration that won the search once should seed the
search next time instead of restarting from defaults.

Entries map a **phase signature** (the top-K operator names of the
critical phase, compared with the paper's Equation 1 similarity — the
same measure OLS uses to segment phases) to the best configuration a
finished search found, together with how much it improved and how many
trials it cost. Lookups return the nearest stored signature above a
similarity threshold, or nothing — a miss means the engine starts cold
from defaults, exactly as if the knowledge base did not exist.

Persistence goes through :class:`repro.storage.JsonDocumentStore`, so a
knowledge directory can be shared between runs, between tenants of the
fleet service (``FleetService.tuning_priors``), or shipped around as a
plain JSON file. A corrupt store degrades to an empty prior set rather
than failing the run: warm starts are an optimization, never a
dependency.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro import obs
from repro.core.analyzer.ols import DEFAULT_SIMILARITY_THRESHOLD, step_similarity
from repro.errors import ConfigurationError, OptimizerError, StorageError
from repro.host.pipeline import PipelineConfig
from repro.storage import JsonDocumentStore

_DOCUMENT = "tuning_knowledge"

_KB_LOOKUPS = obs.counter(
    "repro_optimizer_kb_lookups_total",
    "Knowledge-base lookups, by outcome (hit or miss).",
    labels=("outcome",),
)
_KB_ENTRIES = obs.gauge(
    "repro_optimizer_kb_entries",
    "Entries held by the most recently opened tuning knowledge base.",
).labels()


#: Per-entry cap on retained trial observations (surrogate training data).
MAX_OBSERVATIONS = 64


@dataclass(frozen=True)
class KnowledgeEntry:
    """One remembered search result, keyed by phase signature.

    ``observations`` carries the search's raw per-trial measurements —
    ``{"config": {...}, "throughput": steps/s}`` rows, capped at
    :data:`MAX_OBSERVATIONS` — which the performance surrogate
    (:mod:`repro.core.optimizer.surrogate`) mines as training pairs.
    Entries recorded before observations existed load as empty tuples.
    """

    signature: frozenset[str]
    config: dict[str, object]
    improvement: float
    trials: int
    workload: str = ""
    observations: tuple = ()

    def __post_init__(self) -> None:
        if not self.signature:
            raise OptimizerError("knowledge entry needs a non-empty phase signature")
        if self.trials <= 0:
            raise OptimizerError("knowledge entry needs a positive trial count")
        if len(self.observations) > MAX_OBSERVATIONS:
            object.__setattr__(
                self, "observations", tuple(self.observations[:MAX_OBSERVATIONS])
            )

    def pipeline_config(self) -> PipelineConfig:
        """Rebuild the stored configuration.

        Raises :class:`~repro.errors.ConfigurationError` when the stored
        knobs no longer validate (e.g. a schema change since the entry
        was written); callers treat that as a miss.
        """
        return self.apply_to(PipelineConfig())

    def apply_to(self, base: PipelineConfig) -> PipelineConfig:
        """Overlay the stored knobs onto ``base``.

        Knobs outside the stored set (e.g. jitter) keep ``base``'s
        values, so a warm start never disturbs workload-specific
        settings the search did not touch.
        """
        try:
            return base.with_updates(**self.config)
        except TypeError as error:
            raise ConfigurationError(f"stored config has unknown knobs: {error}")

    def to_document(self) -> dict:
        """Serialize for the backing JSON store."""
        return {
            "signature": sorted(self.signature),
            "config": dict(self.config),
            "improvement": self.improvement,
            "trials": self.trials,
            "workload": self.workload,
            "observations": [dict(row) for row in self.observations],
        }

    @classmethod
    def from_document(cls, document: dict) -> KnowledgeEntry:
        """Parse one stored entry; raises StorageError when malformed.

        Malformed *observation* rows are dropped individually — they
        only feed the surrogate's training set, so losing one must
        never invalidate the entry's warm-start configuration.
        """
        try:
            observations = []
            for row in document.get("observations", []):
                try:
                    observations.append(
                        {
                            "config": dict(row["config"]),
                            "throughput": float(row["throughput"]),
                        }
                    )
                except (KeyError, TypeError, ValueError):
                    continue
            return cls(
                signature=frozenset(document["signature"]),
                config=dict(document["config"]),
                improvement=float(document["improvement"]),
                trials=int(document["trials"]),
                workload=str(document.get("workload", "")),
                observations=tuple(observations),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StorageError(f"malformed knowledge entry: {error}")


@dataclass(frozen=True)
class KnowledgeMatch:
    """A lookup hit: the entry plus how closely its signature matched."""

    entry: KnowledgeEntry
    similarity: float

    @property
    def config(self) -> PipelineConfig:
        """The matched entry's stored configuration, rebuilt."""
        return self.entry.pipeline_config()


@dataclass
class TuningKnowledgeBase:
    """In-memory prior set with optional JSON persistence.

    :attr:`persist_error` holds the last :meth:`save` failure (e.g. a
    read-only knowledge directory), or None after a clean save.
    """

    store: JsonDocumentStore | None = None
    persist_error: str | None = None
    _entries: list[KnowledgeEntry] = field(default_factory=list)

    # --- construction -----------------------------------------------------

    @classmethod
    def open(cls, directory: str | Path) -> TuningKnowledgeBase:
        """Load (or create) the knowledge base under ``directory``.

        A corrupt document logs as an empty prior set — the warm start
        is skipped, the run proceeds cold. An uncreatable directory
        (e.g. a read-only parent) degrades to an in-memory base with
        :attr:`persist_error` set, so the search still runs; it just
        cannot persist.
        """
        try:
            store = JsonDocumentStore(directory)
        except StorageError as error:
            return cls(store=None, persist_error=str(error))
        kb = cls(store=store)
        try:
            document = store.load(_DOCUMENT)
        except StorageError:
            document = None
        if document is not None:
            for raw in document.get("entries", []):
                try:
                    kb._entries.append(KnowledgeEntry.from_document(raw))
                except StorageError:
                    continue
        _KB_ENTRIES.set(len(kb._entries))
        return kb

    # --- queries ----------------------------------------------------------

    def writable(self) -> bool:
        """Whether :meth:`save` could persist anything.

        False for in-memory bases, for directories that could not be
        created, and for read-only knowledge directories — callers
        (``tpupoint tune``) warn up front instead of discovering the
        no-persist only after a successful search.
        """
        if self.store is None:
            return False
        return os.access(self.store.directory, os.W_OK)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[KnowledgeEntry, ...]:
        """Every stored entry, in insertion order."""
        return tuple(self._entries)

    def lookup(
        self,
        signature: frozenset[str],
        threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
    ) -> KnowledgeMatch | None:
        """Nearest stored entry whose signature clears ``threshold``.

        Similarity is Equation 1 over operator-name sets; ties prefer
        the entry with the larger recorded improvement, so the most
        valuable prior wins when several phases look alike.
        """
        if not signature:
            raise OptimizerError("cannot look up an empty phase signature")
        best: KnowledgeMatch | None = None
        for entry in self._entries:
            similarity = step_similarity(signature, entry.signature)
            if similarity < threshold:
                continue
            if (
                best is None
                or similarity > best.similarity
                or (
                    similarity == best.similarity
                    and entry.improvement > best.entry.improvement
                )
            ):
                best = KnowledgeMatch(entry=entry, similarity=similarity)
        _KB_LOOKUPS.labels(outcome="hit" if best else "miss").inc()
        return best

    def nearest(self, signature: frozenset[str]) -> KnowledgeMatch | None:
        """Closest stored entry regardless of threshold; None when empty.

        The health monitor's drift detector uses this: it wants the
        *distance* to the nearest fingerprint, not a warm-start hit, so
        no threshold applies and the lookup counters stay untouched
        (a monitoring scrape must not skew the hit/miss telemetry).
        """
        if not signature:
            raise OptimizerError("cannot look up an empty phase signature")
        best: KnowledgeMatch | None = None
        for entry in self._entries:
            similarity = step_similarity(signature, entry.signature)
            if best is None or similarity > best.similarity or (
                similarity == best.similarity
                and entry.improvement > best.entry.improvement
            ):
                best = KnowledgeMatch(entry=entry, similarity=similarity)
        return best

    # --- updates ----------------------------------------------------------

    def record(self, entry: KnowledgeEntry) -> None:
        """Insert or merge one search result.

        An exact-signature duplicate keeps whichever result improved
        more — re-running a workload never degrades its prior — while
        the two entries' trial observations are pooled (deduplicated,
        capped) so the surrogate's training set only ever grows.
        """
        for index, existing in enumerate(self._entries):
            if existing.signature == entry.signature:
                winner = (
                    entry if entry.improvement > existing.improvement else existing
                )
                merged: list[dict] = []
                seen: set[str] = set()
                for row in tuple(winner.observations) + tuple(
                    existing.observations
                ) + tuple(entry.observations):
                    key = repr(sorted(row.get("config", {}).items())) + repr(
                        row.get("throughput")
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    merged.append(row)
                self._entries[index] = replace(
                    winner, observations=tuple(merged[:MAX_OBSERVATIONS])
                )
                break
        else:
            self._entries.append(entry)
        _KB_ENTRIES.set(len(self._entries))

    def save(self) -> Path | None:
        """Persist to the backing store; no-op for in-memory bases.

        A store that cannot be written — a read-only knowledge
        directory is the common case — degrades to no-persist: the
        failure is remembered in :attr:`persist_error` (so callers like
        ``tpupoint tune`` can warn loudly) and None is returned, but
        the in-memory base keeps working for the rest of the run.
        """
        if self.store is None:
            return None
        document = {
            "version": 1,
            "entries": [entry.to_document() for entry in self._entries],
        }
        try:
            path = self.store.save(_DOCUMENT, document)
        except StorageError as error:
            self.persist_error = str(error)
            return None
        self.persist_error = None
        return path
