"""Online hill-climbing tuner.

The tuning loop of Section VII-B: starting from the user's defaults,
adjust one parameter at a time; if performance improves and output is
unchanged, keep moving the value in the same direction until no neighbor
is better; if no neighbor beats the default, keep the default. Trials
run *online* — they consume real training steps, so no separate warmup
execution is wasted — and every trial pays a post-processing overhead
that the paper observes as the tool's cost on fast devices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.core.optimizer.parameters import AdjustableParameter
from repro.core.optimizer.quality import QualityController
from repro.errors import OptimizerError, QualityViolationError
from repro.host.pipeline import PipelineConfig
from repro.runtime.estimator import TPUEstimator

# Accept a move only when it clears this relative improvement, so jitter
# does not walk the configuration randomly.
_MIN_IMPROVEMENT = 1.02

_TRIALS_TOTAL = obs.counter(
    "repro_optimizer_trials_total",
    "Tuning trials measured, by acceptance outcome.",
    labels=("accepted",),
)
_TRIAL_SECONDS = obs.histogram(
    "repro_optimizer_trial_seconds", "Real wall time of one tuning trial measurement."
).labels()
_TUNE_IMPROVEMENT = obs.gauge(
    "repro_optimizer_improvement_ratio",
    "Tuned over baseline throughput from the last tuning pass.",
).labels()


@dataclass(frozen=True)
class TuningTrial:
    """One measured configuration trial."""

    parameter: str
    value: object
    steps: int
    elapsed_us: float
    accepted: bool

    @property
    def throughput(self) -> float:
        """Training steps per second during the trial.

        A trial that consumed no simulated time is not "infinitely slow"
        — it is invalid evidence. Returning 0.0 here would make a
        degenerate zero-time trial *lose* to any real measurement and
        silently walk the search; rejecting it loudly keeps every
        accept/reject decision grounded in a real measurement.
        """
        if self.elapsed_us <= 0:
            raise OptimizerError(
                f"degenerate trial for {self.parameter!r}: elapsed_us="
                f"{self.elapsed_us} with {self.steps} steps; zero-time "
                "trials must be rejected, not compared"
            )
        return self.steps / (self.elapsed_us / 1e6)


@dataclass
class TuningReport:
    """Outcome of one tuning pass."""

    initial_config: PipelineConfig
    best_config: PipelineConfig
    baseline_throughput: float
    tuned_throughput: float
    trials: list[TuningTrial] = field(default_factory=list)
    steps_consumed: int = 0

    @property
    def improvement(self) -> float:
        """Tuned over baseline throughput (>1 means faster)."""
        if self.baseline_throughput <= 0:
            return 1.0
        return self.tuned_throughput / self.baseline_throughput


class HillClimbTuner:
    """Tunes the live pipeline of a running estimator."""

    def __init__(
        self,
        estimator: TPUEstimator,
        parameters: list[AdjustableParameter],
        quality: QualityController,
        trial_steps: int = 10,
        overhead_us_per_trial: float = 40_000.0,
        step_budget: int | None = None,
    ):
        if trial_steps <= 0:
            raise OptimizerError("trial_steps must be positive")
        self.estimator = estimator
        self.parameters = parameters
        self.quality = quality
        self.trial_steps = trial_steps
        self.overhead_us_per_trial = overhead_us_per_trial
        self.step_budget = step_budget

    # --- measurement ------------------------------------------------------

    def _charge_overhead(self) -> None:
        """Post-processing cost of analyzing one trial's profile."""
        session = self.estimator.session
        last_step = session.log.steps[-1].step if session.log.steps else 0
        session.host_worker.emit_op(
            "TPUPointOptimizerPostProcess",
            last_step,
            session.clock.now_us,
            self.overhead_us_per_trial,
        )
        session.clock.advance(self.overhead_us_per_trial)

    def _measure(self, parameter_name: str, value: object, consumed: int) -> TuningTrial | None:
        """Run one trial window under the current config; None when out of steps."""
        if self.step_budget is not None and consumed + self.trial_steps > self.step_budget:
            return None
        began = time.perf_counter()
        session = self.estimator.session
        with obs.trace("optimizer.trial", parameter=parameter_name, value=str(value)):
            start = session.clock.now_us
            executed = self.estimator.train_steps(self.trial_steps)
            if executed == 0:
                return None
            elapsed = session.clock.now_us - start
            self._charge_overhead()
        _TRIAL_SECONDS.observe(time.perf_counter() - began)
        return TuningTrial(
            parameter=parameter_name,
            value=value,
            steps=executed,
            elapsed_us=elapsed,
            accepted=False,
        )

    # --- hill climbing ---------------------------------------------------------

    def tune(self) -> TuningReport:
        """Run the full one-parameter-at-a-time hill climb."""
        with obs.trace("optimizer.tune", parameters=len(self.parameters)) as span:
            report = self._tune()
            span.set(
                trials=len(report.trials),
                steps_consumed=report.steps_consumed,
                improvement=report.improvement,
            )
        for trial in report.trials:
            _TRIALS_TOTAL.labels(accepted="true" if trial.accepted else "false").inc()
        _TUNE_IMPROVEMENT.set(report.improvement)
        return report

    def _tune(self) -> TuningReport:
        initial = self.estimator.current_pipeline_config()
        best = initial
        report = TuningReport(
            initial_config=initial,
            best_config=initial,
            baseline_throughput=0.0,
            tuned_throughput=0.0,
        )

        baseline = self._measure("baseline", None, report.steps_consumed)
        if baseline is None:
            return report
        report.trials.append(baseline)
        report.steps_consumed += baseline.steps
        report.baseline_throughput = baseline.throughput
        best_throughput = baseline.throughput

        for parameter in self.parameters:
            start_value = int(getattr(best, parameter.name))
            is_bool = isinstance(getattr(best, parameter.name), bool)
            for first_value in parameter.candidate_values(start_value):
                value = first_value
                anchor = start_value
                # Keep moving in this direction while it helps.
                while True:
                    candidate_value = bool(value) if is_bool else value
                    candidate = best.with_updates(**{parameter.name: candidate_value})
                    self.estimator.update_pipeline_config(candidate)
                    trial = self._measure(parameter.name, candidate_value, report.steps_consumed)
                    if trial is None:
                        self.estimator.update_pipeline_config(best)
                        report.best_config = best
                        report.tuned_throughput = best_throughput
                        return report
                    try:
                        self.quality.verify()
                    except QualityViolationError:
                        self.estimator.update_pipeline_config(best)
                        report.trials.append(trial)
                        report.steps_consumed += trial.steps
                        break
                    report.steps_consumed += trial.steps
                    if trial.throughput >= best_throughput * _MIN_IMPROVEMENT:
                        report.trials.append(
                            TuningTrial(
                                parameter=trial.parameter,
                                value=trial.value,
                                steps=trial.steps,
                                elapsed_us=trial.elapsed_us,
                                accepted=True,
                            )
                        )
                        best = candidate
                        best_throughput = trial.throughput
                        if is_bool:
                            break
                        # Next neighbor in the same direction, if any.
                        direction = 1 if value > anchor else -1
                        onward = [
                            v
                            for v in parameter.candidate_values(value)
                            if (v - value) * direction > 0
                        ]
                        if not onward:
                            break
                        anchor = value
                        value = onward[0]
                    else:
                        report.trials.append(trial)
                        self.estimator.update_pipeline_config(best)
                        break

        self.estimator.update_pipeline_config(best)
        report.best_config = best
        report.tuned_throughput = best_throughput
        return report
