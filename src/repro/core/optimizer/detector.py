"""Critical-phase detection.

TPUPoint-Optimizer only tunes once execution has entered the
performance-critical phase. It declares that entry when either condition
of Section VII-B holds:

1. the common bottleneck pattern of operators (reshape, infeed, fusion,
   outfeed) dominates the current phase, or
2. the current phase accounts for more than half of the accumulated
   execution time.

The detector consumes per-step operator statistics (the profiler's
records) online, tracking phases with the same OLS scan the analyzer
uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer.ols import DEFAULT_SIMILARITY_THRESHOLD, OnlineLinearScan
from repro.core.profiler.record import StepStats
from repro.errors import OptimizerError

# The common operator pattern of Section VI: data exchange and layout.
CRITICAL_PATTERN: frozenset[str] = frozenset(
    {
        "Reshape",
        "fusion",
        "InfeedDequeueTuple",
        "Infeed",
        "OutfeedEnqueueTuple",
        "TransferBufferToInfeedLocked",
        "OutfeedDequeueTuple",
    }
)


@dataclass
class CriticalPhaseDetector:
    """Streaming detector over per-step statistics."""

    similarity_threshold: float = DEFAULT_SIMILARITY_THRESHOLD
    pattern_top_k: int = 5
    pattern_hits_required: int = 2
    time_fraction: float = 0.5
    _scanner: OnlineLinearScan = field(default_factory=OnlineLinearScan, repr=False)
    _phase_durations: dict[int, float] = field(default_factory=dict, repr=False)
    _phase_steps: dict[int, list[StepStats]] = field(default_factory=dict, repr=False)
    _critical_since_step: int | None = None

    def __post_init__(self) -> None:
        self._scanner = OnlineLinearScan(threshold=self.similarity_threshold)

    @property
    def critical(self) -> bool:
        """Whether execution is currently inside the critical phase."""
        return self._critical_since_step is not None

    @property
    def critical_since_step(self) -> int | None:
        """Step number at which the critical phase was first detected."""
        return self._critical_since_step

    def observe(self, step: StepStats) -> bool:
        """Feed one step; returns True when inside the critical phase."""
        phase = self._scanner.observe(step)
        self._phase_durations[phase] = (
            self._phase_durations.get(phase, 0.0) + step.elapsed_us
        )
        self._phase_steps.setdefault(phase, []).append(step)

        if self._matches_pattern(phase) or self._dominates_time(phase):
            if self._critical_since_step is None:
                self._critical_since_step = step.step
        else:
            self._critical_since_step = None
        return self.critical

    def phase_signature(self, top_k: int = 8) -> frozenset[str]:
        """Operator-name fingerprint of the phase worth tuning for.

        The signature is the top-``top_k`` operators by accumulated
        duration of the *current* phase when execution is critical, or
        of the longest-running phase observed otherwise. It keys the
        tuning knowledge base: two runs with Equation-1-similar
        signatures warm-start from each other's best configuration.
        """
        if not self._phase_steps:
            raise OptimizerError("no steps observed; cannot fingerprint a phase")
        if top_k <= 0:
            raise OptimizerError("top_k must be positive")
        if self.critical and self._scanner.labels:
            phase = self._scanner.labels[-1]
        else:
            phase = max(self._phase_durations, key=self._phase_durations.get)
        totals: dict[str, float] = {}
        for step in self._phase_steps[phase]:
            for stats in step.operators.values():
                totals[stats.name] = totals.get(stats.name, 0.0) + stats.total_duration_us
        ranked = sorted(totals, key=lambda name: (-totals[name], name))
        return frozenset(ranked[:top_k])

    # --- the two entry conditions -----------------------------------------

    def _matches_pattern(self, phase: int) -> bool:
        """Condition 1: common bottleneck operators among the phase's top."""
        steps = self._phase_steps[phase]
        totals: dict[str, float] = {}
        for step in steps:
            for stats in step.operators.values():
                totals[stats.name] = totals.get(stats.name, 0.0) + stats.total_duration_us
        top = sorted(totals, key=lambda name: -totals[name])[: self.pattern_top_k]
        hits = sum(1 for name in top if name in CRITICAL_PATTERN)
        return hits >= self.pattern_hits_required

    def _dominates_time(self, phase: int) -> bool:
        """Condition 2: phase holds over half the accumulated time."""
        total = sum(self._phase_durations.values())
        if total <= 0:
            return False
        return self._phase_durations[phase] / total > self.time_fraction
