"""Adjustable-parameter discovery.

TPUPoint-Optimizer's program-analysis phase identifies the *adjustable
parameters* a user's input pipeline defines — buffer sizes, thread
counts, and operation orderings that can change without affecting program
output (Section VII-A). A candidate that raises an error when probed is
dropped from the adjustable set, exactly as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import OptimizerError, ReproError
from repro.host.pipeline import PipelineConfig


@dataclass(frozen=True)
class AdjustableParameter:
    """One tunable knob on the input pipeline.

    Attributes:
        name: the PipelineConfig field this parameter controls.
        minimum / maximum: legal value range.
        neighbors: given the current value, candidate values to try next
            (the hill-climber explores these in both directions).
    """

    name: str
    minimum: int
    maximum: int
    neighbors: Callable[[int], list[int]]

    def clamp(self, value: int) -> int:
        """Clip ``value`` into the parameter's [minimum, maximum] range."""
        return max(self.minimum, min(self.maximum, value))

    def candidate_values(self, current: int) -> list[int]:
        """In-range neighbor values, deduplicated, current excluded."""
        seen: list[int] = []
        for value in self.neighbors(current):
            clamped = self.clamp(value)
            if clamped != current and clamped not in seen:
                seen.append(clamped)
        return seen


def _doubling(value: int) -> list[int]:
    return [max(1, value // 2), value * 2]


def _stepping(value: int) -> list[int]:
    return [value - 1, value + 1, value + 2]


def _shuffle_neighbors(value: int) -> list[int]:
    return [value // 4, value * 4] if value else [256]


def _boolean(value: int) -> list[int]:
    return [0 if value else 1]


_CANDIDATES: tuple[AdjustableParameter, ...] = (
    AdjustableParameter("num_parallel_calls", 1, 64, _doubling),
    AdjustableParameter("num_parallel_reads", 1, 32, _doubling),
    AdjustableParameter("prefetch_depth", 0, 16, _stepping),
    AdjustableParameter("infeed_threads", 1, 16, _doubling),
    AdjustableParameter("shuffle_buffer", 0, 1 << 20, _shuffle_neighbors),
    AdjustableParameter("vectorized_preprocess", 0, 1, _boolean),
)


def discover_parameters(config: PipelineConfig) -> list[AdjustableParameter]:
    """Probe each candidate against the live config; keep the safe ones.

    A candidate is adjustable only if setting it to each of its neighbor
    values produces a valid configuration. Candidates whose probes raise
    are excluded (the paper: "If any of these adjustable parameters cause
    errors when altered, TPUPoint-Optimizer will not treat them as
    adjustable").
    """
    adjustable: list[AdjustableParameter] = []
    for candidate in _CANDIDATES:
        current = getattr(config, candidate.name, None)
        if current is None:
            continue
        try:
            for value in candidate.candidate_values(int(current)):
                probe = value if not isinstance(current, bool) else bool(value)
                config.with_updates(**{candidate.name: probe})
        except ReproError:
            continue
        adjustable.append(candidate)
    if not adjustable:
        raise OptimizerError("no adjustable parameters discovered")
    return adjustable
