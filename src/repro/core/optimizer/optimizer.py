"""TPUPoint-Optimizer orchestration.

The automatic tuning workflow of Section VII: run the workload with the
user's defaults while the profiler's statistics stream through the
critical-phase detector; on entry into the performance-critical phase,
instrument a checkpoint, hill-climb the adjustable parameters online
(verifying output quality after every move), then finish the run with
the improved configuration. Everything happens in one execution — no
complete baseline run is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.optimizer.detector import CriticalPhaseDetector
from repro.core.optimizer.instrument import InstrumentationReport, ProgramInstrumenter
from repro.core.optimizer.tuner import HillClimbTuner, TuningReport
from repro.core.profiler.options import ProfilerOptions
from repro.core.profiler.profiler import TPUPointProfiler
from repro.core.profiler.streaming import StepStream
from repro.errors import OptimizerError
from repro.runtime.estimator import TPUEstimator
from repro.runtime.session import SessionSummary


@dataclass(frozen=True)
class OptimizerOptions:
    """Configuration of one TPUPoint-Optimizer run.

    Attributes:
        detection_chunk_steps: steps to run between detector checks.
        trial_steps: steps measured per tuning trial.
        max_tuning_fraction: cap on the fraction of the plan's steps the
            tuner may consume.
        overhead_us_per_trial: simulated post-processing cost per trial.
        profile_interval_ms: profiler request cadence feeding detection.
    """

    detection_chunk_steps: int = 10
    trial_steps: int = 10
    max_tuning_fraction: float = 0.5
    overhead_us_per_trial: float = 40_000.0
    profile_interval_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.detection_chunk_steps <= 0 or self.trial_steps <= 0:
            raise OptimizerError("step counts must be positive")
        if not 0.0 < self.max_tuning_fraction <= 1.0:
            raise OptimizerError("max_tuning_fraction must be in (0, 1]")


@dataclass
class OptimizationResult:
    """Outcome of one optimized run."""

    summary: SessionSummary
    instrumentation: InstrumentationReport
    tuning: TuningReport | None
    detector_triggered_at_step: int | None
    steps_before_tuning: int = 0

    @property
    def tuned(self) -> bool:
        """Whether the tuner ran and changed anything."""
        return self.tuning is not None and self.tuning.best_config != self.tuning.initial_config

    @property
    def improvement(self) -> float:
        """Measured throughput improvement during tuning (1.0 = none)."""
        return self.tuning.improvement if self.tuning else 1.0


class TPUPointOptimizer:
    """Automatic online workload tuning for one estimator."""

    def __init__(self, estimator: TPUEstimator, options: OptimizerOptions | None = None):
        self.estimator = estimator
        self.options = options or OptimizerOptions()
        self.instrumenter = ProgramInstrumenter(estimator)
        self.detector = CriticalPhaseDetector()
        self._stream = StepStream()
        self._records_consumed = 0

    # --- detection plumbing -------------------------------------------------

    def _feed_detector(self, profiler: TPUPointProfiler) -> None:
        """Push newly completed steps from the profiler into the detector.

        The latest step may still be spread across future profile
        windows; :class:`StepStream` withholds it until a later step
        appears.
        """
        records = profiler.records
        for record in records[self._records_consumed :]:
            for step in self._stream.submit(record):
                self.detector.observe(step)
        self._records_consumed = len(records)

    # --- the optimized run -------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Execute the full workload with online tuning."""
        with obs.trace("optimizer.run") as run_span:
            instrumentation = self.instrumenter.analyze()
            profiler = TPUPointProfiler(
                self.estimator,
                ProfilerOptions(
                    request_interval_ms=self.options.profile_interval_ms,
                    record_to_storage=False,
                ),
            )
            profiler.start(analyzer=False)

            plan_steps = self.estimator.plan.train_steps
            steps_before_tuning = 0
            # Phase 1: run with defaults until the critical phase is entered.
            with obs.trace("optimizer.detect") as span:
                while self.estimator.session.global_step < plan_steps:
                    executed = self.estimator.train_steps(
                        self.options.detection_chunk_steps
                    )
                    steps_before_tuning += executed
                    if executed == 0:
                        break
                    self._feed_detector(profiler)
                    if self.detector.critical:
                        break
                span.set(
                    steps=steps_before_tuning, critical=self.detector.critical
                )

            tuning: TuningReport | None = None
            remaining = plan_steps - self.estimator.session.global_step
            if self.detector.critical and remaining > self.options.trial_steps * 2:
                # Phase 2: checkpoint, then tune online.
                self.instrumenter.checkpoint_before_segment()
                budget = int(remaining * self.options.max_tuning_fraction)
                tuner = HillClimbTuner(
                    estimator=self.estimator,
                    parameters=instrumentation.parameters,
                    quality=self.instrumenter.quality,
                    trial_steps=self.options.trial_steps,
                    overhead_us_per_trial=self.options.overhead_us_per_trial,
                    step_budget=budget,
                )
                tuning = tuner.tune()

            # Phase 3: finish the run under the best configuration found.
            remaining = plan_steps - self.estimator.session.global_step
            with obs.trace("optimizer.finish", steps=max(remaining, 0)):
                if remaining > 0:
                    self.estimator.train_steps(remaining)
                summary = self.estimator.finalize()
                profiler.stop()
            run_span.set(tuned=tuning is not None)
        return OptimizationResult(
            summary=summary,
            instrumentation=instrumentation,
            tuning=tuning,
            detector_triggered_at_step=self.detector.critical_since_step,
            steps_before_tuning=steps_before_tuning,
        )
