"""Command-line front end.

Subcommands mirror the toolchain:

* ``tpupoint list`` — show the registered workloads (Table I).
* ``tpupoint profile <workload>`` — run a workload under the profiler,
  detect phases with a chosen algorithm, print the summary, and export
  the chrome://tracing JSON + CSVs (optionally persisting raw records
  with ``--save-records`` and stopping early with ``--breakpoint``).
* ``tpupoint analyze <records-dir>`` — offline analysis of records
  previously saved by ``profile --save-records``.
* ``tpupoint report <workload>`` — profile and write a Markdown
  characterization report.
* ``tpupoint optimize <workload>`` — run the workload under
  TPUPoint-Optimizer and report the speedup against an untouched run.
* ``tpupoint tune <workload>`` — offline multi-strategy configuration
  search (``--strategy hill-climb|annealing|racing|surrogate``),
  optionally warm-started from a phase-keyed knowledge base
  (``--knowledge-dir``; a read-only directory degrades to a loud
  no-persist warning) and parallelized across ``--workers`` without
  changing results. ``--strategy surrogate`` ranks candidates with a
  learned performance model trained from the knowledge base plus
  ``--surrogate-corpus`` and measures only the predicted frontier;
  ``--surrogate-out`` dumps the fitted model JSON.
* ``tpupoint fleet`` — drive N concurrent workloads through the
  multi-tenant live profiling service (:mod:`repro.serve`) and print
  each job's live phases plus the fleet rollup; ``--shards N`` spreads
  tenants over a consistent-hashed :class:`~repro.serve.ShardedFleet`
  with identical results plus goodput accounting and topology.
* ``tpupoint goodput`` — run a fleet on the sharded tier and print the
  per-tenant goodput/badput report (identical at any shard count).
* ``tpupoint health`` — run a fleet under a :class:`HealthMonitor` and
  render the health dashboard: telemetry rings, per-job phase drift,
  SLO burn rates, and the alert timeline (``--faults`` plus the
  ``--checkpoint-*``/``--eval-*`` plan overrides build deterministic
  degradation scenarios; ``--out`` dumps the full health JSON).
* ``tpupoint alerts`` — the same monitored run, reported as the alert
  event log alone (bit-identical at any ``--shards`` count); ``--ack``
  acknowledges a firing rule, ``--out`` writes the alert dump JSON.
* ``tpupoint scrub`` — run the seeded checkered self-test across N
  simulated chips (optionally under a fault plan's ``sdc`` section) and
  name the chips whose step digests, timings, or MXU utilization
  diverge from the golden reference — the confirmation step behind the
  fleet's ``CHIP_SDC_SUSPECT`` quarantine.
* ``tpupoint obs <files>`` — validate and summarize observability dumps
  (toolchain/workload chrome traces, Prometheus or JSON metrics).
* ``tpupoint recover <journal>`` — load a crash-safe record journal
  (written via ``profile --journal``), report what survived, and run
  offline phase analysis on the recovered records.

``profile`` and ``fleet`` accept ``--faults <plan.json>`` to run under a
deterministic fault plan (:mod:`repro.faults`) — see
``docs/robustness.md`` and ``examples/faults/``.

``profile``, ``analyze``, and ``fleet`` accept ``--trace-out`` /
``--metrics-out`` to dump the toolchain's own spans (chrome://tracing
JSON) and metrics snapshot (Prometheus text, or JSON for ``.json``
paths) — see :mod:`repro.obs` and ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro import units
from repro.core.analyzer import TPUPointAnalyzer, associate_checkpoints
from repro.core.api import TPUPoint
from repro.models.registry import PAPER_WORKLOADS, workload
from repro.runtime.events import DeviceKind
from repro.workloads.runner import build_estimator, run_workload
from repro.workloads.spec import WorkloadSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tpupoint",
        description="TPUPoint reproduction: profile, analyze, and optimize "
        "simulated Cloud TPU workloads.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered workloads")

    profile = subparsers.add_parser("profile", help="profile a workload and detect phases")
    profile.add_argument("workload", help="workload key, e.g. bert-mrpc")
    profile.add_argument("--generation", default="v2", choices=["v2", "v3"])
    profile.add_argument(
        "--method", default="ols", choices=["ols", "kmeans", "dbscan"], help="phase detector"
    )
    profile.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="OLS step-similarity threshold in [0, 1] (default 0.70)",
    )
    profile.add_argument("--out", default=None, help="directory for trace/CSV exports")
    profile.add_argument(
        "--save-records", default=None, help="directory to persist raw profile records"
    )
    profile.add_argument(
        "--breakpoint", type=int, default=None, help="stop profiling at this global step"
    )
    profile.add_argument(
        "--faults", default=None, help="JSON fault plan to inject (see docs/robustness.md)"
    )
    profile.add_argument(
        "--journal", default=None, help="crash-safe record journal path"
    )
    profile.add_argument(
        "--format",
        default="binary",
        choices=["binary", "json"],
        help="on-disk encoding for --journal and --save-records "
        "(binary: columnar CRC-checked blocks; json: legacy JSONL/JSON)",
    )
    profile.add_argument(
        "--workers", type=int, default=1,
        help="analyzer worker threads for the clustering sweeps (default 1)",
    )
    _add_obs_flags(profile)

    analyze = subparsers.add_parser(
        "analyze", help="analyze previously saved profile records"
    )
    analyze.add_argument("records", help="directory written by profile --save-records")
    analyze.add_argument(
        "--format",
        default="auto",
        choices=["auto", "binary", "json"],
        help="record-store format to expect (auto follows the manifest; "
        "naming one asserts the store matches it)",
    )
    analyze.add_argument(
        "--method", default="ols", choices=["ols", "kmeans", "dbscan"], help="phase detector"
    )
    analyze.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="OLS step-similarity threshold in [0, 1] (default 0.70)",
    )
    analyze.add_argument("--out", default=None, help="directory for trace/CSV exports")
    analyze.add_argument(
        "--workers", type=int, default=1,
        help="analyzer worker threads for the clustering sweeps (default 1)",
    )
    analyze.add_argument(
        "--cache-dir", default=None,
        help="memo-cache directory; repeated analyses skip completed stages",
    )
    _add_obs_flags(analyze)

    report = subparsers.add_parser(
        "report", help="profile a workload and write a Markdown report"
    )
    report.add_argument("workload", help="workload key, e.g. bert-mrpc")
    report.add_argument("--generation", default="v2", choices=["v2", "v3"])
    report.add_argument("--out", default="tpupoint_report.md", help="report path")

    optimize = subparsers.add_parser("optimize", help="run a workload under the optimizer")
    optimize.add_argument("workload", help="workload key, e.g. naive-qanet-squad")
    optimize.add_argument("--generation", default="v2", choices=["v2", "v3"])

    tune = subparsers.add_parser(
        "tune",
        help="search pipeline configurations offline (multi-strategy, "
        "warm-started from a knowledge base)",
    )
    tune.add_argument("workload", help="workload key, e.g. naive-dcgan-mnist")
    tune.add_argument("--generation", default="v2", choices=["v2", "v3"])
    tune.add_argument(
        "--strategy",
        default="racing",
        choices=["hill-climb", "annealing", "racing", "surrogate"],
        help="search strategy (default racing); surrogate ranks candidates "
        "with a learned performance model and measures only the predicted "
        "frontier (see docs/surrogate.md)",
    )
    tune.add_argument(
        "--knowledge-dir",
        default=None,
        help="tuning knowledge base directory; hits warm-start the search "
        "and finished searches are recorded back. A read-only or "
        "uncreatable directory never fails the run: the search still "
        "executes and a no-persist warning is printed instead",
    )
    tune.add_argument(
        "--surrogate-corpus",
        default=None,
        help="JSON corpus of (signature, config) -> throughput training "
        "pairs merged into the surrogate's training set (the committed "
        "instance is benchmarks/corpus/surrogate_corpus.json)",
    )
    tune.add_argument(
        "--surrogate-kind",
        default="ridge",
        choices=["ridge", "stumps"],
        help="surrogate regressor: closed-form ridge (default) or "
        "gradient-boosted stumps",
    )
    tune.add_argument(
        "--surrogate-out",
        default=None,
        help="write the fitted surrogate model (weights, training digest, "
        "accuracy counters) as JSON after the search",
    )
    tune.add_argument(
        "--workers", type=int, default=1,
        help="worker threads measuring candidate configs concurrently "
        "(results are identical at any width; default 1)",
    )
    tune.add_argument(
        "--trial-steps", type=int, default=None,
        help="train steps measured per candidate (default: strategy-specific)",
    )
    tune.add_argument(
        "--seed", type=int, default=None,
        help="root seed for trial and strategy RNG substreams",
    )
    _add_obs_flags(tune)

    fleet = subparsers.add_parser(
        "fleet",
        help="run N concurrent workloads through the live fleet profiling service",
    )
    fleet.add_argument("--jobs", type=int, default=4, help="number of concurrent jobs")
    fleet.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="workload keys to cycle over (default: a fast Table I mix)",
    )
    fleet.add_argument("--generation", default="v2", choices=["v2", "v3"])
    fleet.add_argument(
        "--chunk", type=int, default=16, help="train steps per scheduling quantum"
    )
    fleet.add_argument(
        "--queue-capacity", type=int, default=64, help="per-job ingest queue bound"
    )
    fleet.add_argument(
        "--threshold", type=float, default=0.70, help="live OLS similarity threshold"
    )
    fleet.add_argument(
        "--faults", default=None, help="JSON fault plan to inject (see docs/robustness.md)"
    )
    fleet.add_argument(
        "--format",
        default="binary",
        choices=["binary", "json"],
        help="ingest wire encoding (binary: codec frames with per-frame "
        "CRC; json: legacy per-record JSON checksums)",
    )
    fleet.add_argument(
        "--heartbeat-deadline",
        type=int,
        default=None,
        help="stall ACTIVE jobs silent for this many pump rounds",
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=None,
        help="spread tenants over this many fleet shards (consistent hashing)",
    )
    _add_obs_flags(fleet)

    goodput = subparsers.add_parser(
        "goodput",
        help="run a fleet and report per-tenant goodput/badput accounting",
    )
    goodput.add_argument("--jobs", type=int, default=4, help="number of concurrent jobs")
    goodput.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="workload keys to cycle over (default: a fast Table I mix)",
    )
    goodput.add_argument("--generation", default="v2", choices=["v2", "v3"])
    goodput.add_argument(
        "--chunk", type=int, default=16, help="train steps per scheduling quantum"
    )
    goodput.add_argument(
        "--queue-capacity", type=int, default=64, help="per-job ingest queue bound"
    )
    goodput.add_argument(
        "--threshold", type=float, default=0.70, help="live OLS similarity threshold"
    )
    goodput.add_argument(
        "--faults", default=None, help="JSON fault plan to inject (see docs/robustness.md)"
    )
    goodput.add_argument(
        "--shards",
        type=int,
        default=2,
        help="fleet shards to run on (the report is identical at any count)",
    )
    _add_obs_flags(goodput)

    health = subparsers.add_parser(
        "health",
        help="run a monitored fleet and render the health dashboard "
        "(rings, drift, SLO burn rates, alerts)",
    )
    _add_monitored_fleet_flags(health)
    health.add_argument(
        "--every",
        type=int,
        default=0,
        help="also print the dashboard every N scheduling rounds (0 = final only)",
    )
    health.add_argument(
        "--out", default=None, help="write the full health dump as JSON"
    )

    alerts = subparsers.add_parser(
        "alerts",
        help="run a monitored fleet and print the alert timeline "
        "(identical at any shard count)",
    )
    _add_monitored_fleet_flags(alerts)
    alerts.add_argument(
        "--ack",
        default=None,
        metavar="RULE",
        help="acknowledge still-firing alerts of this rule before reporting",
    )
    alerts.add_argument(
        "--out", default=None, help="write the alert dump (rules, events, active) as JSON"
    )

    scrub = subparsers.add_parser(
        "scrub",
        help="run the seeded checkered self-test across simulated chips "
        "and name the SDC suspects",
    )
    scrub.add_argument(
        "--chips",
        type=int,
        default=4,
        help="how many chips to scan (chip-0..chip-N-1, default 4)",
    )
    scrub.add_argument(
        "--generation", default="v2", choices=["v2", "v3"], help="TPU generation"
    )
    scrub.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="fault plan JSON; its 'sdc' section is injected during the scan "
        "(omit for a clean reference scan)",
    )
    scrub.add_argument(
        "--seed", type=int, default=None, help="scrub schedule seed (default: plan seed)"
    )
    scrub.add_argument(
        "--steps",
        type=int,
        default=None,
        help="self-test steps per chip (default 96)",
    )
    scrub.add_argument("--out", default=None, help="write the scrub report as JSON")

    recover = subparsers.add_parser(
        "recover", help="recover records from a crash-safe journal and analyze them"
    )
    recover.add_argument("journal", help="journal written by profile --journal")
    recover.add_argument(
        "--format",
        default="auto",
        choices=["auto", "binary", "json"],
        help="journal format to expect (auto detects by magic bytes; "
        "naming one fails loudly if the journal is the other format)",
    )
    recover.add_argument(
        "--method", default="ols", choices=["ols", "kmeans", "dbscan"], help="phase detector"
    )
    recover.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="OLS step-similarity threshold in [0, 1] (default 0.70)",
    )
    recover.add_argument("--out", default=None, help="directory for trace/CSV exports")
    recover.add_argument(
        "--strict",
        action="store_true",
        help="fail on mid-journal corruption instead of skipping it",
    )
    recover.add_argument(
        "--workers", type=int, default=1,
        help="analyzer worker threads for the clustering sweeps (default 1)",
    )
    recover.add_argument(
        "--cache-dir", default=None,
        help="memo-cache directory; a re-run after recovery skips completed stages",
    )

    obs_cmd = subparsers.add_parser(
        "obs",
        help="validate and summarize observability dumps (traces, metrics)",
    )
    obs_cmd.add_argument(
        "files",
        nargs="+",
        help="files written by --trace-out / --metrics-out (or analyzer exports)",
    )

    compare = subparsers.add_parser(
        "compare", help="profile a workload on both generations and diff the runs"
    )
    compare.add_argument("workload", help="workload key, e.g. bert-squad")

    evaluate = subparsers.add_parser(
        "evaluate", help="reproduce the paper's evaluation in one run"
    )
    evaluate.add_argument("--out", default="evaluation", help="output directory")
    evaluate.add_argument(
        "--workloads", nargs="*", default=None, help="restrict the workload set"
    )
    evaluate.add_argument(
        "--no-optimizer", action="store_true", help="skip the Figure 14 experiments"
    )
    evaluate.add_argument(
        "--no-figures", action="store_true", help="skip SVG figure generation"
    )

    figures = subparsers.add_parser(
        "figures", help="regenerate the paper's figures as SVG images"
    )
    figures.add_argument("--out", default="figures", help="output directory")
    figures.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="restrict to these workload keys (default: all nine)",
    )
    figures.add_argument(
        "--only", nargs="*", default=None, help="figure names, e.g. fig10 fig11"
    )

    return parser


def _add_monitored_fleet_flags(parser: argparse.ArgumentParser) -> None:
    """Fleet + monitoring flags shared by ``health`` and ``alerts``."""
    parser.add_argument("--jobs", type=int, default=4, help="number of concurrent jobs")
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="workload keys to cycle over (default: a fast Table I mix)",
    )
    parser.add_argument("--generation", default="v2", choices=["v2", "v3"])
    parser.add_argument(
        "--chunk", type=int, default=16, help="train steps per scheduling quantum"
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, help="per-job ingest queue bound"
    )
    parser.add_argument(
        "--threshold", type=float, default=0.70, help="live OLS similarity threshold"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="fleet shards (alert sequences are identical at any count)",
    )
    parser.add_argument(
        "--faults", default=None, help="JSON fault plan to inject (see docs/robustness.md)"
    )
    parser.add_argument(
        "--request-interval",
        type=float,
        default=250.0,
        help="simulated ms between profile requests (denser than the "
        "profiler default so live telemetry tracks mid-run recovery)",
    )
    parser.add_argument(
        "--sample-every",
        type=int,
        default=1,
        help="health sampling cadence in scheduling rounds",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="session-plan override: checkpoint every N steps (induces a "
        "deterministic phase excursion the drift detector must catch)",
    )
    parser.add_argument(
        "--checkpoint-bytes",
        type=float,
        default=None,
        help="session-plan override: checkpoint size in bytes",
    )
    parser.add_argument(
        "--eval-every",
        type=int,
        default=None,
        help="session-plan override: run evaluation every N steps",
    )
    parser.add_argument(
        "--eval-steps",
        type=int,
        default=None,
        help="session-plan override: evaluation steps per round",
    )
    _add_obs_flags(parser)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Self-observability dump flags shared by profile/analyze/fleet."""
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the toolchain's own spans as chrome://tracing JSON",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the toolchain metrics snapshot (.prom/.txt text, .json JSON)",
    )


def _dump_obs(args: argparse.Namespace, extra_registries=()) -> None:
    """Write the --trace-out / --metrics-out files, if requested."""
    from repro import obs

    if getattr(args, "trace_out", None):
        path = obs.write_trace(args.trace_out)
        print(f"wrote toolchain trace: {path}")
    if getattr(args, "metrics_out", None):
        obs.ensure_core_metrics()
        registries = [obs.default_registry(), *extra_registries]
        path = obs.write_metrics(args.metrics_out, registries)
        print(f"wrote toolchain metrics: {path}")


def _detector_params(args: argparse.Namespace) -> dict:
    """Per-method keyword arguments from the CLI flags."""
    from repro.errors import ConfigurationError

    if args.threshold is None:
        return {}
    if args.method != "ols":
        raise ConfigurationError("--threshold applies only to --method ols")
    if not 0.0 <= args.threshold <= 1.0:
        raise ConfigurationError("--threshold must be in [0, 1]")
    return {"threshold": args.threshold}


def _analysis_cache(args: argparse.Namespace):
    """An on-disk memo cache when --cache-dir was given, else None."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.core.analyzer import AnalysisCache

    return AnalysisCache(directory=args.cache_dir)


def _cmd_list() -> int:
    print(f"{'key':22s} {'model':12s} {'dataset':10s} {'type':22s} {'size':>12s}")
    for key in PAPER_WORKLOADS:
        entry = workload(key)
        print(
            f"{key:22s} {entry.model.name:12s} {entry.dataset.name:10s} "
            f"{entry.model.workload_type:22s} {units.format_bytes(entry.dataset.total_bytes):>12s}"
        )
    print("\nPrefix any key with 'naive-' for the untuned-pipeline variant;")
    print("suffix the dataset with '-half' for the reduced-dataset variant.")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.profiler import ProfilerOptions

    detector_params = _detector_params(args)  # flag conflicts fail before the run
    fault_plan = None
    if args.faults:
        from repro.faults import load_plan

        fault_plan = load_plan(args.faults)
    spec = WorkloadSpec(args.workload, generation=args.generation)
    estimator = build_estimator(spec)
    options = ProfilerOptions(
        breakpoint_step=args.breakpoint,
        fault_plan=fault_plan,
        journal_path=args.journal,
        journal_format=args.format,
    )
    tpupoint = TPUPoint(estimator, profiler_options=options)
    tpupoint.Start(analyzer=True)
    summary = estimator.train()
    tpupoint.Stop()
    if fault_plan is not None:
        report = tpupoint.fault_report()
        profile_faults = ", ".join(
            f"{kind}={count}" for kind, count in sorted(report.get("profile", {}).items())
        )
        client = report.get("client", {})
        print(f"fault plan          : {args.faults} (seed {fault_plan.seed})")
        print(f"injected faults     : {profile_faults or 'none'}")
        print(f"client resilience   : {client.get('retries', 0)} retries, "
              f"{client.get('circuit_trips', 0)} circuit trips, "
              f"{report.get('windows_skipped', 0)} windows skipped, "
              f"{report.get('windows_abandoned', 0)} abandoned")
        recorder = report.get("recorder")
        if recorder is not None and recorder.get("crashed"):
            print("recorder            : CRASHED mid-run (journal has a torn tail)")
    if args.journal:
        print(f"record journal      : {args.journal} ({args.format})")
    if args.save_records:
        from repro.core.profiler.serialize import save_records

        directory = save_records(tpupoint.records, args.save_records, format=args.format)
        print(f"saved {len(tpupoint.records)} records to {directory} ({args.format})")

    print(f"== {spec.display_name} ==")
    print(f"simulated wall time : {units.format_duration(summary.wall_us)}")
    print(f"TPU idle time       : {summary.tpu_idle_fraction:.1%}")
    print(f"MXU utilization     : {summary.mxu_utilization:.1%}")
    print(f"profile records     : {len(tpupoint.records)}")
    from repro.costs import run_cost

    cost = run_cost(summary, args.generation)
    print(f"TPU bill            : ${cost.tpu_dollars:.4f} "
          f"({cost.idle_dollar_fraction:.0%} paid for idle time)")

    analyzer: TPUPointAnalyzer = tpupoint.analyzer(workers=args.workers)
    result = analyzer.analyze(args.method, **detector_params)
    report = result.coverage()
    print(f"\nphases ({args.method}, params {result.params}): {result.num_phases}")
    print(f"top-3 phase coverage: {report.top(3):.1%}")
    for rank, phase in enumerate(result.phases[:3]):
        tpu_top = ", ".join(s.name for s in phase.top_operators(5, DeviceKind.TPU))
        host_top = ", ".join(s.name for s in phase.top_operators(5, DeviceKind.HOST))
        print(f"  phase #{rank}: {phase.num_steps} steps, "
              f"{units.format_duration(phase.total_duration_us)}")
        print(f"    top TPU ops : {tpu_top}")
        print(f"    top host ops: {host_top}")

    associations = associate_checkpoints(result.phases, estimator.checkpoint_store, analyzer.steps)
    nearest = {pid: assoc.checkpoint.step for pid, assoc in associations.items()}
    print(f"nearest checkpoints : {nearest}")

    if args.out:
        paths = analyzer.export(args.out, result)
        for kind, path in paths.items():
            print(f"wrote {kind}: {path}")
    analyzer.close()
    _dump_obs(args)
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(args.workload, generation=args.generation)
    baseline = run_workload(spec)
    estimator = build_estimator(spec)
    result = TPUPoint(estimator).optimize()

    speedup = baseline.summary.wall_us / result.summary.wall_us
    print(f"== {spec.display_name} under TPUPoint-Optimizer ==")
    print(f"baseline wall  : {units.format_duration(baseline.summary.wall_us)}")
    print(f"optimized wall : {units.format_duration(result.summary.wall_us)}")
    print(f"speedup        : {speedup:.3f}x")
    print(f"idle           : {baseline.idle_fraction:.1%} -> {result.summary.tpu_idle_fraction:.1%}")
    print(f"MXU util       : {baseline.mxu_utilization:.1%} -> {result.summary.mxu_utilization:.1%}")
    if result.tuning is not None:
        print(f"tuning trials  : {len(result.tuning.trials)} "
              f"({result.tuning.steps_consumed} steps)")
        print(f"best config    : {result.tuning.best_config}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.core.optimizer import AutotuneOptions, TuningKnowledgeBase, autotune
    from repro.host.pipeline import PipelineConfig
    from repro.rng import DEFAULT_SEED

    spec = WorkloadSpec(args.workload, generation=args.generation)
    probe = build_estimator(spec)
    initial = probe.pipeline_config or PipelineConfig()

    def factory(config: PipelineConfig):
        return build_estimator(dataclasses.replace(spec, pipeline_config=config))

    knowledge = None
    prior_entries = 0
    if args.knowledge_dir:
        knowledge = TuningKnowledgeBase.open(args.knowledge_dir)
        prior_entries = len(knowledge)
        if knowledge.persist_error is not None or not knowledge.writable():
            reason = knowledge.persist_error or "directory is not writable"
            print(
                f"warning: knowledge dir {args.knowledge_dir} is read-only; "
                f"tuning will run but nothing will be persisted ({reason})",
                file=sys.stderr,
            )
    options = AutotuneOptions(
        strategy=args.strategy,
        workers=args.workers,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        workload=spec.key,
        surrogate_kind=args.surrogate_kind,
        surrogate_corpus=args.surrogate_corpus,
    )
    strategy_options = {}
    if args.trial_steps is not None:
        strategy_options["trial_steps"] = args.trial_steps
    result = autotune(
        factory,
        initial,
        options,
        knowledge=knowledge,
        strategy_options=strategy_options or None,
    )

    outcome = result.outcome
    print(f"== {spec.display_name}: offline autotune ({args.strategy}) ==")
    print(f"phase signature : {', '.join(sorted(result.signature))}")
    if knowledge is not None:
        state = (
            f"hit, similarity {result.warm_similarity:.2f}"
            if result.warm_similarity is not None
            else "miss"
        )
        print(f"knowledge base  : {prior_entries} entries in "
              f"{args.knowledge_dir} ({state})")
    warm = "yes" if result.warm_started else "no"
    if result.rolled_back:
        warm += " (rolled back)"
    print(f"warm start      : {warm}")
    print(f"trials          : {len(outcome.trials)} ({outcome.steps_consumed} steps, "
          f"{units.format_duration(result.simulated_us)} simulated)")
    print(f"baseline        : {outcome.baseline_throughput:.2f} steps/s")
    print(f"best            : {outcome.best_throughput:.2f} steps/s "
          f"({outcome.improvement:.3f}x, found at trial {outcome.trials_to_best})")
    print(f"best config     : {outcome.best_config}")
    if result.surrogate is not None:
        model = result.surrogate
        state = "fitted" if model.ready else "cold (too few training pairs)"
        print(f"surrogate       : {model.kind}, {len(model.pairs)} training "
              f"pairs, {state}")
    if result.knowledge_recorded:
        print("recorded        : best config stored for future warm starts")
    if result.knowledge_persist_error is not None:
        print(
            f"warning: knowledge base not persisted (is {args.knowledge_dir} "
            f"read-only?): {result.knowledge_persist_error}",
            file=sys.stderr,
        )
    if args.surrogate_out:
        import json as _json
        from pathlib import Path as _Path

        model = result.surrogate
        if model is None:
            from repro.core.optimizer import build_surrogate

            model = build_surrogate(
                knowledge=knowledge, corpus=args.surrogate_corpus,
                kind=args.surrogate_kind,
            )
        _Path(args.surrogate_out).write_text(
            _json.dumps(model.to_document(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"surrogate dump  : {args.surrogate_out}")
    _dump_obs(args)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.serve import (
        DEFAULT_FLEET_WORKLOADS,
        FleetServiceOptions,
        run_fleet,
    )

    if args.jobs <= 0:
        raise ConfigurationError("--jobs must be positive")
    fault_plan = None
    if args.faults:
        from repro.faults import load_plan

        fault_plan = load_plan(args.faults)
    keys = tuple(args.workloads) if args.workloads else DEFAULT_FLEET_WORKLOADS
    workloads = [keys[i % len(keys)] for i in range(args.jobs)]
    options = FleetServiceOptions(
        queue_capacity=args.queue_capacity,
        threshold=args.threshold,
        heartbeat_deadline=args.heartbeat_deadline,
        wire_format=args.format,
    )
    result = run_fleet(
        workloads,
        generation=args.generation,
        chunk_steps=args.chunk,
        service_options=options,
        fault_plan=fault_plan,
        shards=args.shards,
    )
    if fault_plan is not None:
        quarantined = result.service.quarantined()
        print(f"fault plan : {args.faults} (seed {fault_plan.seed}); "
              f"{result.service.metrics.records_quarantined} records quarantined")
        for entry in quarantined[:5]:
            print(f"  quarantined {entry.job_id} record "
                  f"#{entry.record.index}: {entry.reason}")

    # Section order matters to CI: everything above the service-metrics
    # marker is bit-identical at any shard count, so the shard smoke job
    # diffs the sharded and unsharded runs up to that line.
    print(f"== fleet of {len(workloads)} jobs on TPU{args.generation} "
          f"({result.rounds} scheduling rounds) ==")
    for job in result.jobs:
        for line in job.snapshot.format():
            print(line)
    print("\n-- streaming phase analyses --")
    for job in result.jobs:
        analysis = result.service.phase_analysis(job.job_id)
        boundaries = ", ".join(
            f"[{b.start_position}..{b.end_position}]#{b.phase_id}"
            for b in analysis.boundaries
        )
        print(f"{job.job_id}: {analysis.num_phases} phases over "
              f"{len(analysis.labels)} steps ({analysis.method}, "
              f"k={analysis.params.get('k')}) {boundaries}")
    print("\n-- fleet rollup --")
    for line in result.rollup.format():
        print(line)
    if result.goodput is not None:
        print("\n-- goodput --")
        for line in result.goodput.format():
            print(line)
    print("\n-- service metrics --")
    for line in result.service.metrics.format():
        print(line)
    if args.shards is not None:
        print("\n-- shard topology --")
        for shard, tenants in enumerate(result.service.shard_tenants()):
            print(f"shard {shard}: {', '.join(tenants) or '-'}")
        result.service.close()
    registries = getattr(result.service, "registries", None)
    if registries is None:
        registries = [result.service.metrics.registry]
    _dump_obs(args, extra_registries=registries)
    return 0


def _cmd_goodput(args: argparse.Namespace) -> int:
    """Run a fleet on the sharded tier and print the goodput report.

    The report depends only on the tenants' simulated timelines, so the
    output is identical at any shard count — which is exactly what the
    CI smoke job pins by diffing ``--shards 1`` against ``--shards 2``.
    """
    from repro.errors import ConfigurationError
    from repro.serve import DEFAULT_FLEET_WORKLOADS, FleetServiceOptions, run_fleet

    if args.jobs <= 0:
        raise ConfigurationError("--jobs must be positive")
    fault_plan = None
    if args.faults:
        from repro.faults import load_plan

        fault_plan = load_plan(args.faults)
    keys = tuple(args.workloads) if args.workloads else DEFAULT_FLEET_WORKLOADS
    workloads = [keys[i % len(keys)] for i in range(args.jobs)]
    options = FleetServiceOptions(
        queue_capacity=args.queue_capacity, threshold=args.threshold
    )
    result = run_fleet(
        workloads,
        generation=args.generation,
        chunk_steps=args.chunk,
        service_options=options,
        fault_plan=fault_plan,
        shards=args.shards,
    )
    print(f"== goodput report: {len(workloads)} jobs on TPU{args.generation} ==")
    for line in result.goodput.format():
        print(line)
    registries = result.service.registries
    result.service.close()
    _dump_obs(args, extra_registries=registries)
    return 0


def _monitor_from_flags(args: argparse.Namespace):
    """A fresh :class:`HealthMonitor` configured from the shared flags."""
    from repro.obs import HealthMonitor, HealthOptions

    return HealthMonitor(HealthOptions(sample_every=args.sample_every))


def _run_monitored_fleet(args: argparse.Namespace, health, on_round=None):
    """Drive one fleet run under ``health`` (a :class:`HealthMonitor`).

    Returns the finished :class:`FleetRunResult`; the monitor's residual
    alerts are resolved. Shared by ``tpupoint health`` and ``tpupoint
    alerts`` so both commands observe the exact same deterministic
    scenario for a given flag set.
    """
    from repro.core.profiler import ProfilerOptions
    from repro.errors import ConfigurationError
    from repro.serve import DEFAULT_FLEET_WORKLOADS, FleetServiceOptions, run_fleet

    if args.jobs <= 0:
        raise ConfigurationError("--jobs must be positive")
    fault_plan = None
    if args.faults:
        from repro.faults import load_plan

        fault_plan = load_plan(args.faults)
    keys = tuple(args.workloads) if args.workloads else DEFAULT_FLEET_WORKLOADS
    workloads = [keys[i % len(keys)] for i in range(args.jobs)]
    overrides = {
        name: value
        for name, value in (
            ("checkpoint_every", args.checkpoint_every),
            ("checkpoint_bytes", args.checkpoint_bytes),
            ("eval_every", args.eval_every),
            ("eval_steps", args.eval_steps),
        )
        if value is not None
    }
    return run_fleet(
        workloads,
        generation=args.generation,
        chunk_steps=args.chunk,
        service_options=FleetServiceOptions(
            queue_capacity=args.queue_capacity, threshold=args.threshold
        ),
        profiler_options=ProfilerOptions(request_interval_ms=args.request_interval),
        fault_plan=fault_plan,
        shards=args.shards,
        health=health,
        plan_overrides=overrides or None,
        on_round=on_round,
    )


def _write_json(path: str, payload: dict) -> str:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _cmd_health(args: argparse.Namespace) -> int:
    monitor = _monitor_from_flags(args)

    def on_round(service, rounds):
        del service
        if rounds % args.every == 0:
            for line in monitor.dashboard():
                print(line)
            print()

    result = _run_monitored_fleet(
        args, monitor, on_round=on_round if args.every > 0 else None
    )
    for line in monitor.dashboard():
        print(line)
    if monitor.engine.events:
        print("\n-- alert timeline --")
        for event in monitor.engine.events:
            print(event.format())
    if args.out:
        print(f"\nwrote health dump: {_write_json(args.out, monitor.to_dict())}")
    close = getattr(result.service, "close", None)
    if callable(close):
        close()
    _dump_obs(args)
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    monitor = _monitor_from_flags(args)
    result = _run_monitored_fleet(args, monitor)
    if args.ack:
        acked = monitor.engine.ack(args.ack)
        print(f"acked {acked} firing alert(s) of rule {args.ack}")
    print(f"== alert timeline ({len(monitor.engine.events)} transitions, "
          f"{result.rounds} rounds) ==")
    for event in monitor.engine.events:
        print(event.format())
    active = monitor.engine.active()
    print(f"\n-- still firing ({len(active)}) --")
    for alert in active:
        marker = " [acked]" if alert.acked else ""
        print(f"{alert.rule.severity.value.upper():8} {alert.rule.name} "
              f"({alert.scope}) since tick {alert.since_tick}{marker}")
    if args.out:
        print(f"\nwrote alert dump: {_write_json(args.out, monitor.alerts_dict())}")
    close = getattr(result.service, "close", None)
    if callable(close):
        close()
    _dump_obs(args)
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.tpu.sdc import DEFAULT_SCRUB_STEPS, run_scrub

    if args.chips <= 0:
        raise ConfigurationError("--chips must be positive")
    plan = None
    if args.faults:
        from repro.faults import load_plan

        plan = load_plan(args.faults)
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    report = run_scrub(
        args.chips,
        generation=args.generation,
        plan=plan,
        steps=args.steps if args.steps is not None else DEFAULT_SCRUB_STEPS,
        **kwargs,
    )
    for line in report.format():
        print(line)
    if args.out:
        print(f"\nwrote scrub report: {_write_json(args.out, report.to_dict())}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.profiler.serialize import load_records

    records = load_records(args.records, format=args.format)
    analyzer = TPUPointAnalyzer(
        records, workers=args.workers, cache=_analysis_cache(args)
    )
    result = analyzer.analyze(args.method, **_detector_params(args))
    report = result.coverage()
    print(f"records  : {len(records)} ({len(analyzer.steps)} steps)")
    print(f"phases ({args.method}, params {result.params}): {result.num_phases}")
    print(f"top-3 phase coverage: {report.top(3):.1%}")
    for rank, phase in enumerate(result.phases[:5]):
        tpu_top = ", ".join(s.name for s in phase.top_operators(5, DeviceKind.TPU))
        print(f"  phase #{rank}: {phase.num_steps} steps, "
              f"{units.format_duration(phase.total_duration_us)}  [{tpu_top}]")
    if args.out:
        paths = analyzer.export(args.out, result)
        for kind, path in paths.items():
            print(f"wrote {kind}: {path}")
    analyzer.close()
    _dump_obs(args)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import time

    from repro.core.profiler.journal import recover_journal
    from repro.errors import JournalError

    started = time.perf_counter()
    recovery = recover_journal(args.journal, strict=args.strict)
    elapsed = time.perf_counter() - started
    if args.format != "auto" and recovery.journal_format != args.format:
        raise JournalError(
            f"{args.journal} is a {recovery.journal_format} journal, not {args.format}"
        )
    print(f"== recovery of {args.journal} ==")
    for line in recovery.format():
        print(line)
    mb_per_s = recovery.bytes_total / max(elapsed, 1e-9) / 1e6
    print(f"throughput      : {recovery.bytes_total} bytes in "
          f"{elapsed * 1e3:.1f} ms ({mb_per_s:.1f} MB/s)")
    if not recovery.records:
        print("no intact records survived; nothing to analyze")
        return 0
    analyzer = TPUPointAnalyzer(
        list(recovery.records), workers=args.workers, cache=_analysis_cache(args)
    )
    result = analyzer.analyze(args.method, **_detector_params(args))
    print(f"phases ({args.method}, params {result.params}): {result.num_phases}")
    print(f"top-3 phase coverage: {result.coverage().top(3):.1%}")
    for rank, phase in enumerate(result.phases[:5]):
        tpu_top = ", ".join(s.name for s in phase.top_operators(5, DeviceKind.TPU))
        print(f"  phase #{rank}: {phase.num_steps} steps, "
              f"{units.format_duration(phase.total_duration_us)}  [{tpu_top}]")
    if args.out:
        paths = analyzer.export(args.out, result)
        for kind, path in paths.items():
            print(f"wrote {kind}: {path}")
    analyzer.close()
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro import obs

    for path in args.files:
        for line in obs.summarize(path):
            print(line)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import build_report, write_report

    spec = WorkloadSpec(args.workload, generation=args.generation)
    estimator = build_estimator(spec)
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    summary = estimator.train()
    tpupoint.Stop()
    report = build_report(
        spec.display_name,
        summary,
        tpupoint.analyzer(),
        methods=("ols", "kmeans"),
        checkpoint_store=estimator.checkpoint_store,
        generation=args.generation,
    )
    path = write_report(args.out, report)
    print(f"wrote report: {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.compare import compare_runs
    from repro.costs import run_cost

    summaries = {}
    records = {}
    for generation in ("v2", "v3"):
        spec = WorkloadSpec(args.workload, generation=generation)
        estimator = build_estimator(spec)
        tpupoint = TPUPoint(estimator)
        tpupoint.Start(analyzer=True)
        summaries[generation] = estimator.train()
        tpupoint.Stop()
        records[generation] = tpupoint.records
    comparison = compare_runs(
        f"{args.workload} on TPUv2", summaries["v2"], records["v2"],
        f"{args.workload} on TPUv3", summaries["v3"], records["v3"],
    )
    print(comparison.format())
    for generation in ("v2", "v3"):
        cost = run_cost(summaries[generation], generation)
        print(f"TPU{generation} bill: ${cost.tpu_dollars:.4f} "
              f"({cost.idle_dollar_fraction:.0%} paid for idle time)")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.evaluate import evaluate
    from repro.viz.figures import DEFAULT_WORKLOADS

    workloads = tuple(args.workloads) if args.workloads else DEFAULT_WORKLOADS
    result = evaluate(
        args.out,
        workloads=workloads,
        run_optimizer=not args.no_optimizer,
        figures=not args.no_figures,
    )
    print(f"mean idle      : v2 {result.mean_idle('v2'):.1%}, "
          f"v3 {result.mean_idle('v3'):.1%} (paper 38.9% / 43.5%)")
    print(f"mean MXU util  : v2 {result.mean_mxu('v2'):.1%}, "
          f"v3 {result.mean_mxu('v3'):.1%} (paper 22.7% / 11.3%)")
    if result.speedups:
        for key, speedup in result.speedups.items():
            print(f"optimizer      : {key} {speedup:.3f}x")
    print(f"wrote {result.out_dir}/SUMMARY.md, metrics.csv"
          + (f", {len(result.figures)} figures" if result.figures else ""))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import DEFAULT_WORKLOADS, generate_figures

    workloads = tuple(args.workloads) if args.workloads else DEFAULT_WORKLOADS
    names = tuple(args.only) if args.only else None
    written = generate_figures(args.out, workloads=workloads, names=names)
    for name, path in sorted(written.items()):
        print(f"wrote {name}: {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (unknown workload, unreadable records, ...) print a
    one-line message and exit 1 instead of dumping a traceback.
    """
    from repro.errors import ReproError

    args = _build_parser().parse_args(argv)
    dispatch = {
        "list": lambda: _cmd_list(),
        "profile": lambda: _cmd_profile(args),
        "analyze": lambda: _cmd_analyze(args),
        "report": lambda: _cmd_report(args),
        "optimize": lambda: _cmd_optimize(args),
        "tune": lambda: _cmd_tune(args),
        "fleet": lambda: _cmd_fleet(args),
        "goodput": lambda: _cmd_goodput(args),
        "health": lambda: _cmd_health(args),
        "alerts": lambda: _cmd_alerts(args),
        "scrub": lambda: _cmd_scrub(args),
        "obs": lambda: _cmd_obs(args),
        "recover": lambda: _cmd_recover(args),
        "compare": lambda: _cmd_compare(args),
        "evaluate": lambda: _cmd_evaluate(args),
        "figures": lambda: _cmd_figures(args),
    }
    try:
        return dispatch[args.command]()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
