"""Energy and dollar-cost accounting.

The paper's motivation is that underutilized accelerators "waste energy
and money". This module turns a run summary into those terms: chip
energy from the TDP with an idle-power floor, host energy, and Google
Cloud billing (TPUs bill per second whether busy or idle), including the
headline number — dollars burned while the TPU sat idle.

Prices are the public on-demand US rates of the paper's era; both the
prices and power model are parameters, not constants baked into logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.session import SessionSummary
from repro.tpu.slice import TpuSliceSpec
from repro.tpu.specs import TpuChipSpec, TpuGeneration, chip_spec

#: On-demand hourly price per Cloud TPU device (USD, circa 2020).
TPU_HOURLY_USD = {
    TpuGeneration.V2: 4.50,
    TpuGeneration.V3: 8.00,
}

#: On-demand hourly price of the n1-standard-16 host VM (USD).
HOST_HOURLY_USD = 0.76

#: Fraction of TDP a TPU draws while idle (clock gating is imperfect).
IDLE_POWER_FRACTION = 0.35

#: Host VM average power draw in watts (16-core Skylake server share).
HOST_POWER_WATTS = 250.0


@dataclass(frozen=True)
class RunCost:
    """Energy and billing breakdown of one run."""

    generation: TpuGeneration
    wall_seconds: float
    busy_seconds: float
    tpu_energy_joules: float
    host_energy_joules: float
    tpu_dollars: float
    host_dollars: float
    idle_dollars: float

    @property
    def idle_seconds(self) -> float:
        return self.wall_seconds - self.busy_seconds

    @property
    def total_dollars(self) -> float:
        return self.tpu_dollars + self.host_dollars

    @property
    def total_energy_joules(self) -> float:
        return self.tpu_energy_joules + self.host_energy_joules

    @property
    def idle_dollar_fraction(self) -> float:
        """Share of the TPU bill paid for idle time."""
        if self.tpu_dollars <= 0:
            return 0.0
        return self.idle_dollars / self.tpu_dollars

    def format(self) -> str:
        """A human-readable cost block."""
        return "\n".join(
            [
                f"wall time        : {self.wall_seconds:.1f} s "
                f"(busy {self.busy_seconds:.1f} s, idle {self.idle_seconds:.1f} s)",
                f"TPU energy       : {self.tpu_energy_joules / 1e3:.2f} kJ",
                f"host energy      : {self.host_energy_joules / 1e3:.2f} kJ",
                f"TPU bill         : ${self.tpu_dollars:.4f} "
                f"(${self.idle_dollars:.4f} paid for idle time, "
                f"{self.idle_dollar_fraction:.0%})",
                f"host bill        : ${self.host_dollars:.4f}",
                f"total            : ${self.total_dollars:.4f}, "
                f"{self.total_energy_joules / 1e3:.2f} kJ",
            ]
        )


def run_cost(
    summary: SessionSummary,
    generation: "TpuGeneration | str | TpuChipSpec",
    spec: TpuChipSpec | None = None,
    idle_power_fraction: float = IDLE_POWER_FRACTION,
    host_power_watts: float = HOST_POWER_WATTS,
    hourly_usd: float | None = None,
) -> RunCost:
    """Energy and billing for a finished run.

    For custom accelerator specs (portability mode) pass ``hourly_usd``
    explicitly — there is no list price to look up.
    """
    if not 0.0 <= idle_power_fraction <= 1.0:
        raise ConfigurationError("idle_power_fraction must be in [0, 1]")
    if host_power_watts < 0:
        raise ConfigurationError("host_power_watts must be non-negative")
    num_devices = 1
    if isinstance(generation, TpuSliceSpec):
        num_devices = generation.num_chips
        spec = spec or generation.aggregate_chip_spec()
        generation = generation.generation
    spec = spec or chip_spec(generation)
    generation = spec.generation
    if hourly_usd is None:
        per_device = TPU_HOURLY_USD.get(generation)
        if per_device is None:
            raise ConfigurationError(
                f"no list price for {generation!r}; pass hourly_usd explicitly"
            )
        hourly_usd = per_device * num_devices

    wall_s = summary.wall_us / 1e6
    busy_s = summary.tpu_busy_us / 1e6
    idle_s = max(0.0, wall_s - busy_s)

    tpu_energy = spec.tdp_watts * (busy_s + idle_power_fraction * idle_s)
    host_energy = host_power_watts * wall_s

    tpu_rate = hourly_usd / 3600.0
    tpu_dollars = tpu_rate * wall_s
    idle_dollars = tpu_rate * idle_s
    host_dollars = HOST_HOURLY_USD / 3600.0 * wall_s

    return RunCost(
        generation=generation,
        wall_seconds=wall_s,
        busy_seconds=busy_s,
        tpu_energy_joules=tpu_energy,
        host_energy_joules=host_energy,
        tpu_dollars=tpu_dollars,
        host_dollars=host_dollars,
        idle_dollars=idle_dollars,
    )


def savings(before: RunCost, after: RunCost) -> dict[str, float]:
    """Dollar and energy savings of an optimized run over a baseline."""
    return {
        "dollars": before.total_dollars - after.total_dollars,
        "joules": before.total_energy_joules - after.total_energy_joules,
        "idle_dollars": before.idle_dollars - after.idle_dollars,
    }
