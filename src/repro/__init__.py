"""TPUPoint reproduction: automatic characterization of hardware-accelerated
machine-learning behavior for cloud computing (ISPASS 2021).

The package reproduces the TPUPoint toolchain — profiler, analyzer, and
optimizer — on top of a from-scratch simulation of the Cloud TPU
platform (TPU chips, host VM, storage, a TensorFlow-like graph runtime,
and behavioural models of the paper's five workloads).

Quickstart::

    from repro import TPUPoint, WorkloadSpec, build_estimator

    estimator = build_estimator(WorkloadSpec("bert-mrpc"))
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    estimator.train()
    tpupoint.Stop()
    phases = tpupoint.analyzer().ols_phases()
"""

from repro.compare import RunComparison, compare_runs
from repro.core.analyzer import AnalysisResult, TPUPointAnalyzer
from repro.costs import RunCost, run_cost
from repro.core.api import TPUPoint
from repro.core.optimizer import (
    AutotuneOptions,
    AutotuneResult,
    OptimizationResult,
    OptimizerOptions,
    TPUPointOptimizer,
    TuningKnowledgeBase,
    autotune,
)
from repro.core.profiler import ProfileRecord, ProfilerOptions, TPUPointProfiler
from repro.host.data import Dataset
from repro.host.pipeline import PipelineConfig
from repro.models.registry import (
    OPTIMIZER_WORKLOADS,
    PAPER_WORKLOADS,
    SMALL_DATASET_WORKLOADS,
    all_workloads,
    workload,
)
from repro.runtime.estimator import TPUEstimator
from repro.serve import (
    FleetService,
    FleetServiceOptions,
    FleetSnapshot,
    JobSnapshot,
    run_fleet,
)
from repro.sweeps import SweepCell, SweepResult, sweep
from repro.runtime.session import SessionPlan, SessionSummary
from repro.tpu.specs import TpuGeneration
from repro.workloads.runner import WorkloadRun, build_estimator, run_workload
from repro.workloads.spec import WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "OPTIMIZER_WORKLOADS",
    "PAPER_WORKLOADS",
    "SMALL_DATASET_WORKLOADS",
    "AnalysisResult",
    "AutotuneOptions",
    "AutotuneResult",
    "OptimizationResult",
    "OptimizerOptions",
    "TuningKnowledgeBase",
    "autotune",
    "Dataset",
    "PipelineConfig",
    "ProfileRecord",
    "ProfilerOptions",
    "FleetService",
    "FleetServiceOptions",
    "FleetSnapshot",
    "JobSnapshot",
    "RunComparison",
    "RunCost",
    "compare_runs",
    "run_cost",
    "run_fleet",
    "SessionPlan",
    "SessionSummary",
    "TPUEstimator",
    "TPUPoint",
    "TPUPointAnalyzer",
    "TPUPointOptimizer",
    "TPUPointProfiler",
    "TpuGeneration",
    "SweepCell",
    "SweepResult",
    "WorkloadRun",
    "WorkloadSpec",
    "sweep",
    "all_workloads",
    "build_estimator",
    "run_workload",
    "workload",
    "__version__",
]
