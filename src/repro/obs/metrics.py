"""Toolchain metrics: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` holds named metric *families*; each family
yields one child per label combination (``family.labels(algorithm="ols")``)
or a single unlabeled child. Values export two ways:

* :meth:`MetricsRegistry.render` — Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` series for histograms);
* :meth:`MetricsRegistry.to_dict` — a JSON-friendly snapshot.

Metric names follow ``repro_<subsystem>_<name>_<unit>`` (see
``docs/observability.md``). A process-wide default registry backs the
module-level :func:`counter`/:func:`gauge`/:func:`histogram` helpers the
instrumented modules use; :class:`~repro.serve.metrics.ServiceMetrics`
instances carry their own registry so per-service counts stay isolated.
All operations are lock-protected and safe under concurrent use.
"""

from __future__ import annotations

import json
import math
import re
import threading
from pathlib import Path

from repro.errors import ObsError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): toolchain work spans microseconds
#: (queue pops) to tens of seconds (clustering sweeps).
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_suffix(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value."""

    def __init__(self, labels: dict[str, str]):
        self.label_values = labels
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError("counters only go up; inc() needs a non-negative amount")
        with self._lock:
            self._value += amount

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """A value that can move in either direction."""

    def __init__(self, labels: dict[str, str]):
        self.label_values = labels
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Bucketed observations with a running sum and count.

    Buckets follow Prometheus semantics: an observation lands in every
    bucket whose upper bound is >= the value (``le`` is inclusive), and
    exposition renders the counts cumulatively with a final ``+Inf``.
    """

    def __init__(self, labels: dict[str, str], buckets: tuple[float, ...]):
        self.label_values = labels
        self.buckets = buckets
        self._bucket_counts = [0] * (len(buckets) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        """Largest value observed so far (0.0 before any observation)."""
        return self._max

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        with self._lock:
            pairs: list[tuple[float, int]] = []
            running = 0
            for bound, count in zip(self.buckets, self._bucket_counts):
                running += count
                pairs.append((bound, running))
            pairs.append((math.inf, self._count))
            return pairs

    def _reset(self) -> None:
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one named metric, keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not _NAME_RE.match(name):
            raise ObsError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ObsError(f"invalid label name {label!r} on {name}")
        if kind == "histogram" and (
            not buckets or list(buckets) != sorted(set(buckets))
        ):
            raise ObsError(f"histogram {name} buckets must be sorted and distinct")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets)
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **label_values: str):
        """The child for one label combination (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise ObsError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                labels = dict(zip(self.label_names, key))
                if self.kind == "histogram":
                    child = Histogram(labels, self.buckets)
                else:
                    child = _CHILD_TYPES[self.kind](labels)
                self._children[key] = child
            return child

    def remove(self, **label_values: str) -> object | None:
        """Drop one child (e.g. when its labeled entity is evicted)."""
        key = tuple(str(label_values[name]) for name in self.label_names)
        with self._lock:
            return self._children.pop(key, None)

    def children(self) -> list:
        with self._lock:
            return list(self._children.values())

    def _default_child(self):
        return self.labels()


class MetricsRegistry:
    """A namespace of metric families; the unit of exposition."""

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # --- registration ------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help=help, label_names=tuple(labels), buckets=buckets
                )
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ObsError(
                f"metric {name} already registered as {family.kind}"
                f"{family.label_names}, not {kind}{tuple(labels)}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        """Register (or fetch) a counter family; idempotent by name."""
        return self._family(name, "counter", help, tuple(labels))

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, tuple(labels), buckets=tuple(buckets))

    # --- reading -----------------------------------------------------------

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Zero every child without invalidating family handles."""
        for family in self.families():
            for child in family.children():
                child._reset()

    # --- exposition --------------------------------------------------------

    def render(self) -> str:
        """Prometheus text exposition of every family."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            children = family.children()
            if not children and not family.label_names:
                # An unlabeled family always exposes its (zero) sample.
                children = [family._default_child()]
            for child in children:
                suffix = _label_suffix(child.label_values)
                if family.kind == "histogram":
                    for bound, count in child.cumulative_buckets():
                        labels = dict(child.label_values)
                        labels["le"] = _format_value(bound)
                        lines.append(
                            f"{family.name}_bucket{_label_suffix(labels)} {count}"
                        )
                    lines.append(f"{family.name}_sum{suffix} {_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    lines.append(f"{family.name}{suffix} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """A JSON-friendly snapshot of every family."""
        snapshot: dict = {}
        for family in self.families():
            samples = []
            for child in family.children():
                entry: dict = {"labels": dict(child.label_values)}
                if family.kind == "histogram":
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry["buckets"] = {
                        _format_value(bound): count
                        for bound, count in child.cumulative_buckets()
                    }
                else:
                    entry["value"] = child.value
                samples.append(entry)
            snapshot[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return snapshot


#: The process-wide registry the toolchain instruments itself into.
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _DEFAULT_REGISTRY


def counter(name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
    """A counter family on the default registry."""
    return _DEFAULT_REGISTRY.counter(name, help=help, labels=labels)


def gauge(name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
    """A gauge family on the default registry."""
    return _DEFAULT_REGISTRY.gauge(name, help=help, labels=labels)


def histogram(
    name: str,
    help: str = "",
    labels: tuple[str, ...] = (),
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
) -> MetricFamily:
    """A histogram family on the default registry."""
    return _DEFAULT_REGISTRY.histogram(name, help=help, labels=labels, buckets=buckets)


def render_prometheus(registries) -> str:
    """Concatenated Prometheus exposition of several registries."""
    return "".join(registry.render() for registry in registries)


def write_metrics(
    path: str | Path, registries=None
) -> Path:
    """Dump a metrics snapshot; format chosen by suffix.

    ``.json`` writes the merged :meth:`MetricsRegistry.to_dict` snapshot;
    anything else (``.prom``, ``.txt``) writes Prometheus text. With no
    ``registries`` the default registry alone is dumped.
    """
    if registries is None:
        registries = [_DEFAULT_REGISTRY]
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".json":
        merged: dict = {}
        for registry in registries:
            merged.update(registry.to_dict())
        path.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    else:
        path.write_text(render_prometheus(registries), encoding="utf-8")
    return path
