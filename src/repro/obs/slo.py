"""SLO burn-rate accounting over the goodput ledger.

An SLO here is a target fraction of "good" over "total" — goodput
microseconds over all charged microseconds (the
:class:`~repro.serve.shard.ledger.GoodputLedger` invariant), or records
accepted over records submitted (the ingest SLO). Each sampling tick
the engine turns the cumulative totals into a **windowed ratio** (the
delta since the previous sample) and derives the SRE burn rate:

    burn = (1 - ratio) / (1 - target)

i.e. how many times faster than budget the error budget is burning; 1.0
means exactly on target. Alerts use the classic **multi-window** form:
only when *both* a short window (fast signal) and a long window
(sustained signal) burn above ``burn_factor`` does the ``:burning``
series flip to 1 — a single bad tick cannot page, and a long-cold
window cannot hide a fresh regression.

Series written per spec (all fleet-level, shard-invariant):

* ``slo:<name>:ratio`` — windowed good/total ratio (1.0 when idle);
* ``slo:<name>:burn_short`` / ``slo:<name>:burn_long`` — burn rates;
* ``slo:<name>:burning`` — 1.0 while both windows exceed the factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObsError
from repro.obs.timeseries import RingStore


@dataclass(frozen=True)
class SLOSpec:
    """One objective: a target good/total fraction plus burn windows."""

    name: str
    target: float
    short_window: int = 3
    long_window: int = 9
    burn_factor: float = 2.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ObsError("SLO spec needs a name")
        if not 0.0 < self.target < 1.0:
            raise ObsError(f"SLO {self.name} target must be inside (0, 1)")
        if self.short_window <= 0 or self.long_window <= self.short_window:
            raise ObsError(
                f"SLO {self.name} needs 0 < short_window < long_window"
            )
        if self.burn_factor <= 0:
            raise ObsError(f"SLO {self.name} burn_factor must be positive")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.target

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "short_window": self.short_window,
            "long_window": self.long_window,
            "burn_factor": self.burn_factor,
        }


#: The stock objectives the health monitor installs: most wall time
#: should advance training, and nearly every submitted record should be
#: accepted without shedding.
DEFAULT_SLOS = (
    SLOSpec(
        name="goodput",
        target=0.5,
        short_window=3,
        long_window=9,
        # Calibrated against the fleet workloads: a healthy run's long
        # burn stays <=0.67 (short <=0.74), while a retry/backoff burst
        # pushes both windows past 1.0 for several rounds.
        burn_factor=1.0,
        description="fraction of charged wall time that advanced training",
    ),
    SLOSpec(
        name="ingest",
        target=0.95,
        short_window=3,
        long_window=9,
        burn_factor=2.0,
        description="fraction of submitted records accepted without shedding",
    ),
)


@dataclass(frozen=True)
class SLOStatus:
    """One spec's current standing (dashboard row)."""

    spec: SLOSpec
    ratio: float
    burn_short: float
    burn_long: float
    burning: bool

    def format(self) -> str:
        flame = " BURNING" if self.burning else ""
        return (
            f"{self.spec.name:<10} ratio {self.ratio:6.1%}  "
            f"target {self.spec.target:.0%}  "
            f"burn {self.burn_short:.2f}x/{self.burn_long:.2f}x{flame}"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "target": self.spec.target,
            "ratio": self.ratio,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "burning": self.burning,
        }


class SLOEngine:
    """Turns cumulative good/total counters into burn-rate series."""

    def __init__(self, specs: tuple[SLOSpec, ...] = DEFAULT_SLOS):
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ObsError("SLO spec names must be unique")
        self.specs = {spec.name: spec for spec in specs}
        self._totals: dict[str, tuple[float, float]] = {}

    def observe(
        self, name: str, good: float, total: float, store: RingStore, tick: int
    ) -> SLOStatus:
        """Fold one cumulative ``(good, total)`` reading at ``tick``.

        The first reading establishes the baseline (an idle ratio of
        1.0), so good/total accumulated before monitoring began never
        reads as a burn.
        """
        spec = self.specs.get(name)
        if spec is None:
            raise ObsError(f"unknown SLO {name!r}")
        if good < 0 or total < 0 or good > total + 1e-9:
            raise ObsError(f"SLO {name} needs 0 <= good <= total")
        previous = self._totals.get(name)
        self._totals[name] = (good, total)
        if previous is None:
            ratio = 1.0
        else:
            delta_good = good - previous[0]
            delta_total = total - previous[1]
            # Idle windows (no charges) are on-target by definition.
            ratio = (delta_good / delta_total) if delta_total > 0 else 1.0
        ratio = min(max(ratio, 0.0), 1.0)
        store.record(f"slo:{name}:ratio", tick, ratio)
        ring = store.series(f"slo:{name}:ratio")
        burn_short = self._burn(ring.window(spec.short_window), spec, spec.short_window)
        burn_long = self._burn(ring.window(spec.long_window), spec, spec.long_window)
        burning = burn_short >= spec.burn_factor and burn_long >= spec.burn_factor
        store.record(f"slo:{name}:burn_short", tick, burn_short)
        store.record(f"slo:{name}:burn_long", tick, burn_long)
        store.record(f"slo:{name}:burning", tick, 1.0 if burning else 0.0)
        return SLOStatus(
            spec=spec,
            ratio=ratio,
            burn_short=burn_short,
            burn_long=burn_long,
            burning=burning,
        )

    @staticmethod
    def _burn(ratios: list[float], spec: SLOSpec, window: int) -> float:
        """Mean error over the window, in budget multiples.

        The divisor is the *nominal* window length: early in a run the
        missing pre-history counts as on-target, so the first ticks
        cannot page on a half-filled window.
        """
        if not ratios:
            return 0.0
        error = sum(1.0 - value for value in ratios) / max(window, len(ratios))
        return error / spec.budget

    def status(self, store: RingStore) -> list[SLOStatus]:
        """Current standing of every spec that has observed samples."""
        rows: list[SLOStatus] = []
        for name in sorted(self.specs):
            spec = self.specs[name]
            ring = store.get(f"slo:{name}:ratio")
            if ring is None or ring.last() is None:
                continue
            burn_short = self._burn(
                ring.window(spec.short_window), spec, spec.short_window
            )
            burn_long = self._burn(ring.window(spec.long_window), spec, spec.long_window)
            rows.append(
                SLOStatus(
                    spec=spec,
                    ratio=ring.last(),
                    burn_short=burn_short,
                    burn_long=burn_long,
                    burning=burn_short >= spec.burn_factor
                    and burn_long >= spec.burn_factor,
                )
            )
        return rows
