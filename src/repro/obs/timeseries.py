"""Fixed-capacity telemetry rings over the metrics registries.

The exposition side of :mod:`repro.obs` is point-in-time: a registry
renders whatever its counters hold *now*. Health monitoring needs
history — "did quarantines grow this window?", "what did goodput look
like over the last 40 rounds?" — without unbounded memory. This module
adds that history as **ring buffers**: each named series keeps its last
``capacity`` ``(tick, value)`` points and evicts the oldest beyond that,
so a monitor's footprint is O(series x capacity) regardless of run
length, the same statistical-summary discipline the paper's recorder
applies to profile windows.

Three layers:

* :class:`RingBuffer` — one bounded series; strictly increasing ticks.
* :class:`RingStore` — a namespace of rings sharing one capacity, with
  a JSON round-trip (``to_dict``/``from_dict``) for ``--out`` dumps.
* :class:`RegistrySampler` — scrapes a :class:`~repro.obs.metrics.MetricsRegistry`
  into a store: counters become per-tick **rates** (deltas between
  scrapes), gauges record their value, histograms reduce to a small
  deterministic digest (p50/p95/p99 interpolated from the cumulative
  buckets, plus an observation rate).

Ticks are *simulation* time — the fleet driver's scheduling round index
— never wall clock, so two runs of the same seeded fleet produce
bit-identical rings at any shard count.
"""

from __future__ import annotations

import math

from repro.errors import ObsError

#: Points retained per series; at one sample per fleet round this covers
#: runs far longer than the CLI drives.
DEFAULT_RING_CAPACITY = 240

#: Histogram digest quantiles (suffixes ``:p50``/``:p95``/``:p99``).
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def histogram_quantile(
    cumulative: list[tuple[float, int]],
    quantile: float,
    observed_max: float | None = None,
) -> float:
    """Interpolate one quantile from cumulative ``(bound, count)`` pairs.

    The deterministic digest behind the ``:pNN`` series: the quantile's
    rank is located in the first bucket whose cumulative count reaches
    it and linearly interpolated between the bucket's bounds (Prometheus
    ``histogram_quantile`` semantics). A rank landing in the ``+Inf``
    bucket returns ``observed_max`` when known, else the last finite
    bound — never infinity, so rings stay plottable.
    """
    if not 0.0 < quantile < 1.0:
        raise ObsError("quantile must be inside (0, 1)")
    if not cumulative:
        return 0.0
    total = cumulative[-1][1]
    if total <= 0:
        return 0.0
    rank = quantile * total
    previous_bound, previous_count = 0.0, 0
    for bound, count in cumulative:
        if count >= rank:
            if math.isinf(bound):
                if observed_max is not None:
                    return max(observed_max, previous_bound)
                return previous_bound
            if count == previous_count:
                return bound
            fraction = (rank - previous_count) / (count - previous_count)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, count
    return previous_bound


class RingBuffer:
    """One bounded time series of ``(tick, value)`` points."""

    __slots__ = ("capacity", "evicted", "_ticks", "_values")

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity <= 0:
            raise ObsError("ring capacity must be positive")
        self.capacity = capacity
        self.evicted = 0
        self._ticks: list[int] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._ticks)

    def append(self, tick: int, value: float) -> None:
        """Add one point; ticks must be strictly increasing."""
        if self._ticks and tick <= self._ticks[-1]:
            raise ObsError(
                f"ring ticks must increase: got {tick} after {self._ticks[-1]}"
            )
        self._ticks.append(int(tick))
        self._values.append(float(value))
        if len(self._ticks) > self.capacity:
            del self._ticks[0]
            del self._values[0]
            self.evicted += 1

    def ticks(self) -> list[int]:
        return list(self._ticks)

    def values(self) -> list[float]:
        return list(self._values)

    def last(self) -> float | None:
        return self._values[-1] if self._values else None

    def last_tick(self) -> int | None:
        return self._ticks[-1] if self._ticks else None

    def window(self, n: int) -> list[float]:
        """The most recent ``n`` values (all, when fewer are held)."""
        if n <= 0:
            raise ObsError("window size must be positive")
        return list(self._values[-n:])

    def mean(self, n: int | None = None) -> float:
        values = self._values if n is None else self._values[-n:]
        return (sum(values) / len(values)) if values else 0.0

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "evicted": self.evicted,
            "ticks": list(self._ticks),
            "values": list(self._values),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RingBuffer":
        """Rebuild a ring from :meth:`to_dict` output; validates shape."""
        if not isinstance(payload, dict):
            raise ObsError(f"ring dump must be an object, got {type(payload).__name__}")
        capacity = payload.get("capacity")
        if not isinstance(capacity, int) or capacity <= 0:
            raise ObsError(f"ring dump has a bad capacity: {capacity!r}")
        ticks = payload.get("ticks")
        values = payload.get("values")
        if not isinstance(ticks, list) or not isinstance(values, list):
            raise ObsError("ring dump needs 'ticks' and 'values' arrays")
        if len(ticks) != len(values):
            raise ObsError(
                f"ring dump is torn: {len(ticks)} ticks vs {len(values)} values"
            )
        if len(ticks) > capacity:
            raise ObsError(f"ring dump holds {len(ticks)} points over capacity {capacity}")
        ring = cls(capacity)
        previous = None
        for tick, value in zip(ticks, values):
            if not isinstance(tick, int) or isinstance(tick, bool):
                raise ObsError(f"ring dump has a non-integer tick: {tick!r}")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ObsError(f"ring dump has a non-numeric value: {value!r}")
            if previous is not None and tick <= previous:
                raise ObsError(f"ring dump ticks are not increasing at {tick}")
            previous = tick
            ring.append(tick, float(value))
        ring.evicted = int(payload.get("evicted", 0) or 0)
        return ring


class RingStore:
    """A namespace of rings sharing one capacity."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity <= 0:
            raise ObsError("ring capacity must be positive")
        self.capacity = capacity
        self._series: dict[str, RingBuffer] = {}

    def __len__(self) -> int:
        return len(self._series)

    def series(self, name: str) -> RingBuffer:
        """The ring for ``name``, created empty on first use."""
        ring = self._series.get(name)
        if ring is None:
            ring = RingBuffer(self.capacity)
            self._series[name] = ring
        return ring

    def record(self, name: str, tick: int, value: float) -> None:
        self.series(name).append(tick, value)

    def get(self, name: str) -> RingBuffer | None:
        return self._series.get(name)

    def names(self) -> list[str]:
        return sorted(self._series)

    def match(self, prefix: str) -> list[str]:
        """Series names starting with ``prefix``, sorted."""
        return sorted(name for name in self._series if name.startswith(prefix))

    def points(self) -> int:
        """Total points held across every series."""
        return sum(len(ring) for ring in self._series.values())

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "series": {name: self._series[name].to_dict() for name in self.names()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RingStore":
        if not isinstance(payload, dict):
            raise ObsError(f"ring store dump must be an object, got {type(payload).__name__}")
        capacity = payload.get("capacity")
        if not isinstance(capacity, int) or capacity <= 0:
            raise ObsError(f"ring store dump has a bad capacity: {capacity!r}")
        series = payload.get("series")
        if not isinstance(series, dict):
            raise ObsError("ring store dump needs a 'series' object")
        store = cls(capacity)
        for name, ring_payload in series.items():
            if not isinstance(name, str) or not name:
                raise ObsError(f"ring store dump has a bad series name: {name!r}")
            store._series[name] = RingBuffer.from_dict(ring_payload)
        return store


def merge_stores(stores: list[RingStore], capacity: int | None = None) -> RingStore:
    """Sum per-shard stores into one fleet-wide view, pointwise by tick.

    Series sum across stores at matching ticks (absent series contribute
    nothing); quantile digests (``:pNN`` suffixes) take the max instead,
    since latencies do not add across shards. Stores sampled on the same
    tick schedule merge losslessly; misaligned ticks union.
    """
    if capacity is None:
        capacity = max((store.capacity for store in stores), default=DEFAULT_RING_CAPACITY)
    merged = RingStore(capacity)
    names = sorted({name for store in stores for name in store.names()})
    for name in names:
        suffix = name.rsplit(":", 1)[-1]
        is_quantile = (
            ":" in name and suffix.startswith("p") and suffix[1:].isdigit()
        )
        combined: dict[int, float] = {}
        for store in stores:
            ring = store.get(name)
            if ring is None:
                continue
            for tick, value in zip(ring.ticks(), ring.values()):
                if is_quantile:
                    combined[tick] = max(combined.get(tick, value), value)
                else:
                    combined[tick] = combined.get(tick, 0.0) + value
        for tick in sorted(combined):
            merged.record(name, tick, combined[tick])
    return merged


def sparkline(values: list[float], width: int = 24) -> str:
    """Render a series as unicode block glyphs (the dashboard rings)."""
    if not values:
        return ""
    tail = values[-width:]
    low = min(tail)
    high = max(tail)
    if high <= low:
        return _SPARK_GLYPHS[0] * len(tail)
    span = high - low
    glyphs = []
    for value in tail:
        index = int((value - low) / span * (len(_SPARK_GLYPHS) - 1))
        glyphs.append(_SPARK_GLYPHS[index])
    return "".join(glyphs)


class RegistrySampler:
    """Scrapes metric families into a :class:`RingStore`.

    Counters record as ``<name>[{labels}]:rate`` (delta since the prior
    scrape; the first scrape establishes the baseline and records 0, so
    totals accumulated before monitoring began never masquerade as a
    burst). Gauges record their value under the bare name. Histograms
    record ``:p50``/``:p95``/``:p99`` digests and an observation
    ``:rate``. Label sets render sorted, so series names are stable.
    """

    def __init__(
        self,
        store: RingStore,
        prefix: str = "",
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ):
        self.store = store
        self.prefix = prefix
        self.quantiles = tuple(quantiles)
        self._previous: dict[str, float] = {}

    def _series_name(self, family_name: str, labels: dict[str, str]) -> str:
        if not labels:
            return f"{self.prefix}{family_name}"
        inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
        return f"{self.prefix}{family_name}{{{inner}}}"

    def _rate(self, name: str, tick: int, total: float) -> None:
        previous = self._previous.get(name)
        self._previous[name] = total
        delta = max(total - previous, 0.0) if previous is not None else 0.0
        self.store.record(name, tick, delta)

    def sample(self, registry, tick: int, names: set[str] | None = None) -> int:
        """Scrape one registry at ``tick``; returns series touched."""
        touched = 0
        for family in registry.families():
            if names is not None and family.name not in names:
                continue
            for child in family.children():
                base = self._series_name(family.name, child.label_values)
                if family.kind == "counter":
                    self._rate(f"{base}:rate", tick, child.value)
                    touched += 1
                elif family.kind == "gauge":
                    self.store.record(base, tick, child.value)
                    touched += 1
                else:  # histogram
                    pairs = child.cumulative_buckets()
                    for quantile in self.quantiles:
                        label = f"p{int(round(quantile * 100))}"
                        self.store.record(
                            f"{base}:{label}",
                            tick,
                            histogram_quantile(pairs, quantile, observed_max=child.max),
                        )
                    self._rate(f"{base}:rate", tick, float(child.count))
                    touched += 1
        return touched
