"""Continuous fleet health telemetry.

:class:`HealthMonitor` is the conductor over the other ``repro.obs``
health pieces: once per fleet scheduling round it scrapes the serving
tier into telemetry rings (:mod:`repro.obs.timeseries`), folds drift
(:mod:`repro.obs.drift`) and SLO burn rates (:mod:`repro.obs.slo`) into
derived series, and evaluates the alert rules
(:mod:`repro.obs.alerts`). The fleet driver wires it in via
``run_fleet(..., health=monitor)``; ``tpupoint health`` renders its
dashboard and ``tpupoint alerts`` its event log.

Determinism is the design constraint: **every series an alert rule
reads is fleet-level** — the aggregate service counters (bit-identical
across shard counts by the sharded tier's guarantee), the shared
goodput ledger, the default registry's profiler/fault counters, and
per-job live analyses (gathered in global registration order). Ticks
are scheduling-round indices. Per-shard rings exist too, but only the
dashboard reads them; nothing that decides whether an alert fires ever
looks at a shard-count-dependent signal. Sampling cadence is seeded:
with ``sample_every > 1`` the scrape phase comes from a named
deterministic RNG stream, so even subsampled health output is
bit-reproducible for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import rng as rng_mod
from repro.errors import ObsError
from repro.obs.alerts import AlertEngine, AlertEvent, AlertRule, builtin_rules
from repro.obs.drift import (
    DEFAULT_SDC_DROP,
    DriftBand,
    PhaseDriftDetector,
    UtilizationAnomalyDetector,
)
from repro.obs.metrics import counter, default_registry, gauge
from repro.obs.slo import DEFAULT_SLOS, SLOEngine, SLOSpec
from repro.obs.timeseries import (
    DEFAULT_RING_CAPACITY,
    RingStore,
    sparkline,
)
from repro.rng import DEFAULT_SEED

_SAMPLES = counter(
    "repro_obs_health_samples_total",
    "Health sampling passes taken by the monitor.",
)
_ALERT_EVENTS = counter(
    "repro_obs_health_alert_events_total",
    "Alert transitions emitted, by rule and transition.",
    labels=("rule", "transition"),
)
_ACTIVE_ALERTS = gauge(
    "repro_obs_health_active_alerts",
    "Alerts currently firing across the fleet.",
)
_RING_POINTS = gauge(
    "repro_obs_health_ring_points",
    "Points currently held across the monitor's fleet rings.",
)
_DRIFT_MAX = gauge(
    "repro_obs_health_drift_distance_max",
    "Largest live phase-drift distance across jobs at the last sample.",
)

# Bound child handles: registry reset zeros children in place, so these
# stay valid, and the per-round path skips the labels() lookup.
_SAMPLES_CHILD = _SAMPLES.labels()
_ACTIVE_ALERTS_CHILD = _ACTIVE_ALERTS.labels()
_RING_POINTS_CHILD = _RING_POINTS.labels()
_DRIFT_MAX_CHILD = _DRIFT_MAX.labels()

#: Default-registry counter families scraped into fleet rings, as
#: ``(family, series)`` pairs; children sum before the rate is taken.
_GLOBAL_COUNTER_SERIES = (
    ("repro_profiler_circuit_trips_total", "profiler:circuit_trips"),
    ("repro_profiler_circuit_skips_total", "profiler:circuit_skips"),
    ("repro_profiler_retries_total", "profiler:retries"),
    ("repro_profiler_request_failures_total", "profiler:failures"),
    ("repro_faults_injected_total", "faults:injected"),
)

#: ServiceMetrics counters scraped into fleet rings (aggregate view)
#: and into each shard's rings, as ``(attribute, series)`` pairs.
_SERVICE_COUNTER_SERIES = (
    ("records_submitted", "serve:records_submitted"),
    ("records_ingested", "serve:records_ingested"),
    ("records_dropped", "serve:records_dropped"),
    ("records_quarantined", "serve:records_quarantined"),
    ("steps_assembled", "serve:steps_assembled"),
    ("jobs_stalled", "serve:jobs_stalled"),
)


@dataclass(frozen=True)
class HealthOptions:
    """Configuration of one health monitor."""

    capacity: int = DEFAULT_RING_CAPACITY
    sample_every: int = 1
    seed: int = DEFAULT_SEED
    drift: DriftBand = field(default_factory=DriftBand)
    sdc_drop: float = DEFAULT_SDC_DROP
    slos: tuple[SLOSpec, ...] = DEFAULT_SLOS
    rules: tuple[AlertRule, ...] | None = None  # None -> builtin_rules()

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ObsError("health ring capacity must be positive")
        if self.sample_every <= 0:
            raise ObsError("health sample_every must be positive")
        if not 0.0 < self.sdc_drop <= 1.0:
            raise ObsError("health sdc_drop must be in (0, 1]")


def scrape_targets(service) -> list[tuple[str, object]]:
    """``(label, ServiceMetrics)`` pairs for the per-shard dashboard.

    Prefers the tier's own :meth:`health_targets`; falls back to a
    single ``service`` target for anything metrics-shaped.
    """
    targets = getattr(service, "health_targets", None)
    if callable(targets):
        return targets()
    return [("service", service.metrics)]


def live_analyses(service) -> list[tuple[str, object]]:
    """``(job_id, LiveJobAnalysis)`` pairs in global registration order.

    Prefers the tier's own :meth:`live_analyses`; returns an empty list
    for services that do not expose live analysis state.
    """
    analyses = getattr(service, "live_analyses", None)
    if callable(analyses):
        return analyses()
    return []


def chip_assignments(service) -> dict[str, str]:
    """``job_id -> chip`` placements, empty for tiers without SDC wiring.

    Both fleet tiers report assignments in registration order, so the
    per-chip series the SDC rule reads are shard-count invariant.
    """
    assignments = getattr(service, "chip_assignments", None)
    if callable(assignments):
        return assignments()
    return {}


class HealthMonitor:
    """Samples a fleet tier into rings and evaluates alert rules."""

    def __init__(self, options: HealthOptions | None = None, knowledge=None):
        self.options = options or HealthOptions()
        self.rings = RingStore(self.options.capacity)
        self.shard_rings: dict[str, RingStore] = {}
        rules = self.options.rules
        if rules is None:
            rules = builtin_rules(
                drift_distance=self.options.drift.fire_distance,
                sdc_drop=self.options.sdc_drop,
            )
        self.engine = AlertEngine(rules)
        self.drift = PhaseDriftDetector(knowledge=knowledge, band=self.options.drift)
        self.sdc = UtilizationAnomalyDetector(
            band=self.options.drift, fire_drop=self.options.sdc_drop
        )
        self.chip_quarantines: dict[str, int] = {}
        self.slo = SLOEngine(self.options.slos)
        self.tick = 0
        self.samples = 0
        self.finished = False
        # Per-store baseline maps: rate deltas need the prior cumulative
        # total per series, keyed by store identity without string
        # concatenation on the per-round hot path.
        self._previous: dict[int, dict[str, float]] = {}
        self._families: dict[str, object] = {}
        # Seeded scrape phase: with sample_every N, sampling lands on a
        # deterministic offset in [0, N) drawn from a named stream.
        if self.options.sample_every > 1:
            draw = rng_mod.stream("obs/health", self.options.seed)
            self._offset = int(draw.integers(0, self.options.sample_every))
        else:
            self._offset = 0

    # --- sampling ----------------------------------------------------------

    def _rate(self, store: RingStore, name: str, tick: int, total: float) -> None:
        baselines = self._previous.get(id(store))
        if baselines is None:
            baselines = self._previous[id(store)] = {}
        previous = baselines.get(name)
        baselines[name] = total
        delta = max(total - previous, 0.0) if previous is not None else 0.0
        store.record(name, tick, delta)

    def _global_counter_total(self, family_name: str) -> float:
        family = self._families.get(family_name)
        if family is None:
            family = default_registry().get(family_name)
            if family is None:
                return 0.0
            self._families[family_name] = family
        return sum(child.value for child in family.children())

    def observe(self, service, tick: int | None = None) -> list[AlertEvent]:
        """Fold one scheduling round; returns alert transitions emitted.

        Call once per round (the fleet driver does). Non-sampling ticks
        (``sample_every`` subsampling) return immediately with no events.
        """
        if self.finished:
            raise ObsError("health monitor already finished")
        self.tick = self.tick + 1 if tick is None else int(tick)
        tick = self.tick
        if tick % self.options.sample_every != self._offset % self.options.sample_every:
            return []
        self.samples += 1
        _SAMPLES_CHILD.inc()

        # Fleet-level serve counters (aggregate across shards).
        metrics = service.metrics
        for attribute, series in _SERVICE_COUNTER_SERIES:
            self._rate(self.rings, f"{series}:rate", tick, getattr(metrics, attribute))

        # Default-registry resilience/fault counters.
        for family_name, series in _GLOBAL_COUNTER_SERIES:
            self._rate(
                self.rings,
                f"{series}:rate",
                tick,
                self._global_counter_total(family_name),
            )

        # Per-shard rings (dashboard only; never read by alert rules).
        for label, shard_metrics in scrape_targets(service):
            store = self.shard_rings.get(label)
            if store is None:
                store = RingStore(self.options.capacity)
                self.shard_rings[label] = store
            for attribute, series in _SERVICE_COUNTER_SERIES:
                self._rate(
                    store, f"{series}:rate", tick, getattr(shard_metrics, attribute)
                )

        # Phase drift per live job, and SDC throughput drop per chip
        # (the max over a chip's resident jobs: any one degraded tenant
        # implicates the chip).
        drift_max = 0.0
        chips = chip_assignments(service)
        chip_drops: dict[str, float] = {}
        for job_id, analysis in live_analyses(service):
            distance = self.drift.observe(job_id, analysis)
            if distance is not None:
                self.rings.record(f"drift:{job_id}", tick, distance)
                drift_max = max(drift_max, distance)
            chip = chips.get(job_id)
            if chip is None:
                continue
            drop = self.sdc.observe(job_id, analysis)
            if drop is not None:
                chip_drops[chip] = max(chip_drops.get(chip, 0.0), drop)
        for chip, drop in chip_drops.items():
            self.rings.record(f"chip_sdc:{chip}", tick, drop)
        _DRIFT_MAX_CHILD.set(drift_max)

        # Chip quarantine counts (dashboard only; the rule reads rings).
        counts = getattr(service, "chip_quarantine_counts", None)
        if callable(counts):
            self.chip_quarantines = dict(counts())

        # SLOs over the goodput ledger and the ingest counters.
        report = None
        goodput_report = getattr(service, "goodput_report", None)
        if callable(goodput_report):
            report = goodput_report()
        if report is not None and "goodput" in self.slo.specs:
            self.slo.observe(
                "goodput", report.goodput_us, report.total_us, self.rings, tick
            )
        if "ingest" in self.slo.specs:
            submitted = float(metrics.records_submitted)
            dropped = float(metrics.records_dropped)
            self.slo.observe(
                "ingest", max(submitted - dropped, 0.0), submitted, self.rings, tick
            )

        events = self.engine.evaluate(self.rings, tick)
        self._account(events)
        return events

    def finish(self) -> list[AlertEvent]:
        """End of run: resolve anything still firing (idempotent)."""
        if self.finished:
            return []
        self.finished = True
        events = self.engine.finish()
        self._account(events)
        return events

    def _account(self, events: list[AlertEvent]) -> None:
        for event in events:
            _ALERT_EVENTS.labels(rule=event.rule, transition=event.transition).inc()
        _ACTIVE_ALERTS_CHILD.set(len(self.engine.active()))
        _RING_POINTS_CHILD.set(self.rings.points())

    # --- rendering ---------------------------------------------------------

    #: Fleet ring series shown on the dashboard, with display labels.
    _DASHBOARD_SERIES = (
        ("serve:steps_assembled:rate", "steps/round"),
        ("serve:records_ingested:rate", "ingest/round"),
        ("serve:records_quarantined:rate", "quarantine/round"),
        ("profiler:circuit_trips:rate", "breaker trips"),
        ("slo:goodput:ratio", "goodput ratio"),
    )

    def dashboard(self) -> list[str]:
        """The ``tpupoint health`` terminal view, as printable lines."""
        lines = [f"== fleet health @ tick {self.tick} ({self.samples} samples) =="]
        if self.shard_rings:
            lines.append("-- shards --")
            header = f"{'shard':<12} {'steps':>8} {'ingested':>9} {'dropped':>8} {'quar':>6}"
            lines.append(header)
            for label in sorted(self.shard_rings):
                store = self.shard_rings[label]

                def _total(series: str) -> int:
                    ring = store.get(series)
                    return int(sum(ring.values())) if ring is not None else 0

                lines.append(
                    f"{label:<12} {_total('serve:steps_assembled:rate'):>8} "
                    f"{_total('serve:records_ingested:rate'):>9} "
                    f"{_total('serve:records_dropped:rate'):>8} "
                    f"{_total('serve:records_quarantined:rate'):>6}"
                )
        lines.append("-- rings --")
        for series, label in self._DASHBOARD_SERIES:
            ring = self.rings.get(series)
            if ring is None or ring.last() is None:
                continue
            lines.append(
                f"{label:<18} {sparkline(ring.values()):<24} last {ring.last():g}"
            )
        drifts = self.rings.match("drift:")
        if drifts:
            lines.append("-- drift --")
            for name in drifts:
                ring = self.rings.get(name)
                lines.append(
                    f"{name[len('drift:'):]:<24} "
                    f"{sparkline(ring.values()):<24} last {ring.last():.2f}"
                )
        if self.chip_quarantines:
            lines.append("-- chips --")
            lines.append(f"{'chip':<12} {'sdc drop':>9} {'quarantined':>12}")
            for chip in sorted(self.chip_quarantines):
                ring = self.rings.get(f"chip_sdc:{chip}")
                last = ring.last() if ring is not None else None
                drop = f"{last:.2f}" if last is not None else "-"
                lines.append(
                    f"{chip:<12} {drop:>9} {self.chip_quarantines[chip]:>12}"
                )
        statuses = self.slo.status(self.rings)
        if statuses:
            lines.append("-- slo --")
            for status in statuses:
                lines.append(status.format())
        active = self.engine.active()
        lines.append(f"-- active alerts ({len(active)}) --")
        for alert in active:
            marker = " [acked]" if alert.acked else ""
            lines.append(
                f"{alert.rule.severity.value.upper():8} {alert.rule.name} "
                f"({alert.scope}) since tick {alert.since_tick} "
                f"value {alert.last_value:g}{marker}"
            )
        return lines

    # --- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        """The full health dump (``tpupoint health --out``)."""
        return {
            "version": 1,
            "tick": self.tick,
            "samples": self.samples,
            "rings": self.rings.to_dict(),
            "shards": {
                label: store.to_dict()
                for label, store in sorted(self.shard_rings.items())
            },
            "chips": {
                chip: self.chip_quarantines[chip]
                for chip in sorted(self.chip_quarantines)
            },
            "alerts": self.engine.to_dict(),
            "slos": [status.to_dict() for status in self.slo.status(self.rings)],
        }

    def alerts_dict(self) -> dict:
        """The alert-only dump (``tpupoint alerts --out``); shard-invariant."""
        return self.engine.to_dict()
