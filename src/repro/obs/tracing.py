"""Toolchain span tracing.

TPUPoint makes *workloads* observable; this module makes the *toolchain
itself* observable. A :class:`Tracer` produces nested, thread-safe spans
around the profiler/analyzer/optimizer/serve hot paths —

>>> with trace("analyzer.kmeans_sweep", steps=420) as span:
...     for k in range(1, 16):
...         with trace("analyzer.kmeans_fit", k=k):
...             fit(k)
...     span.set(best_k=6)

— and exports them in the same chrome://tracing Trace Event Format the
analyzer already emits for workloads (:mod:`repro.core.analyzer.visualize`),
so a toolchain trace opens in the same viewer (chrome://tracing, Perfetto).

Spans record *real* wall time (:func:`time.perf_counter`), unlike the
simulated clock the workload traces follow: a toolchain trace answers
"where did the tool spend its time", the paper's Section V overhead
question, for our own implementation. Each thread keeps its own active
span stack (parent linkage never crosses threads); the finished-span log
and id allocation are lock-protected, so concurrent fleet-style use is
safe. An exception inside a span still closes it, tagging the span with
the exception type under the ``error`` attribute.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

_PID = 1
_TRACER_NAME = "repro.obs toolchain"

#: Finished spans a tracer retains before it starts dropping. Long
#: fleet runs emit spans every scheduling round; the cap keeps trace
#: memory bounded while ``repro_obs_spans_dropped_total`` records how
#: much history the export is missing.
DEFAULT_MAX_SPANS = 100_000


@dataclass
class Span:
    """One timed, attributed region of toolchain work."""

    span_id: int
    name: str
    start_us: float
    parent_id: int | None = None
    thread_id: int = 0
    duration_us: float | None = None
    attributes: dict = field(default_factory=dict)

    def set(self, **attributes) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def finished(self) -> bool:
        return self.duration_us is not None


_SPANS_DROPPED = None


def _spans_dropped_counter():
    """The process-wide drop counter, bound on first drop.

    Imported lazily so this module stays importable on its own without
    pulling :mod:`repro.obs.metrics` in at load time.
    """
    global _SPANS_DROPPED
    if _SPANS_DROPPED is None:
        from repro.obs.metrics import counter

        _SPANS_DROPPED = counter(
            "repro_obs_spans_dropped_total",
            "Finished spans evicted from bounded tracer storage.",
        ).labels()
    return _SPANS_DROPPED


class _NullSpan:
    """The span handed out while tracing is disabled; absorbs writes."""

    __slots__ = ()

    def set(self, **attributes) -> "_NullSpan":
        del attributes
        return self


NULL_SPAN = _NullSpan()


def _jsonable(value):
    """Coerce an attribute value so the chrome export always serializes.

    Span attributes accept anything (enums, paths, specs); only JSON
    scalars pass through untouched, everything else exports as ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class Tracer:
    """Collects spans for one process; thread-safe.

    Storage is bounded: once ``max_spans`` finished spans are held, the
    oldest span is dropped per new arrival (the recent history is the
    diagnostic one) and ``repro_obs_spans_dropped_total`` counts what
    the export will be missing.
    """

    def __init__(self, enabled: bool = True, max_spans: int = DEFAULT_MAX_SPANS):
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._spans: list[Span] = []
        self._next_id = 0
        self._local = threading.local()

    # --- recording ---------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def trace(self, name: str, **attributes):
        """Open a span named ``name``; nests under the thread's current span."""
        if not self.enabled:
            yield NULL_SPAN
            return
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            span_id=span_id,
            name=name,
            start_us=self._now_us(),
            parent_id=parent_id,
            thread_id=threading.get_ident(),
            attributes=dict(attributes),
        )
        stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.attributes.setdefault("error", type(error).__name__)
            raise
        finally:
            span.duration_us = max(self._now_us() - span.start_us, 0.0)
            stack.pop()
            with self._lock:
                self._spans.append(span)
                if len(self._spans) > self.max_spans:
                    del self._spans[0]
                    self.dropped_spans += 1
                    _spans_dropped_counter().inc()

    # --- reading -----------------------------------------------------------

    def spans(self) -> list[Span]:
        """All finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def active_depth(self) -> int:
        """Open spans on the calling thread's stack."""
        return len(self._stack())

    def reset(self) -> None:
        """Drop finished spans and restart the clock epoch."""
        with self._lock:
            self._spans.clear()
            self.dropped_spans = 0
            self._epoch = time.perf_counter()

    # --- export ------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The spans as a chrome://tracing dictionary.

        Same Trace Event Format as the analyzer's workload export: one
        process, one track per OS thread, complete events (``ph: "X"``)
        with microsecond timestamps. Span attributes and parent links
        land in ``args`` so the viewer shows them on click.
        """
        spans = self.spans()
        tids: dict[int, int] = {}
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": _PID,
                "args": {"name": _TRACER_NAME},
            }
        ]
        for span in spans:
            if span.thread_id not in tids:
                tid = len(tids) + 1
                tids[span.thread_id] = tid
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": _PID,
                        "tid": tid,
                        "args": {"name": f"toolchain thread {tid}"},
                    }
                )
        for span in spans:
            args = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(
                (key, _jsonable(value)) for key, value in span.attributes.items()
            )
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": _PID,
                    "tid": tids[span.thread_id],
                    "ts": span.start_us,
                    "dur": max(span.duration_us or 0.0, 0.01),
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Write the chrome://tracing JSON file; returns the path written."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=2)
        return path


#: The process-wide tracer every instrumented module records into.
_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _DEFAULT_TRACER


def trace(name: str, **attributes):
    """Open a span on the default tracer (the common entry point)."""
    return _DEFAULT_TRACER.trace(name, **attributes)


def set_tracing_enabled(enabled: bool) -> bool:
    """Toggle span collection process-wide; returns the previous state."""
    previous = _DEFAULT_TRACER.enabled
    _DEFAULT_TRACER.enabled = bool(enabled)
    return previous


def write_trace(path: str | Path) -> Path:
    """Dump the default tracer as chrome://tracing JSON."""
    return _DEFAULT_TRACER.write(path)
