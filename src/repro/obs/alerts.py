"""Declarative alert rules over telemetry rings.

Rules are evaluated on the fleet driver's simulated round clock, never
wall time, so a seeded run produces the same alert sequence every time
and at any shard count. Each :class:`AlertRule` names one ring series
(or a ``prefix:*`` family of them — one alert *scope* per matching
series, e.g. one ``PHASE_DRIFT`` per job) and a condition:

* ``threshold`` — the series' latest value compared against a bound;
* ``rate`` — the same comparison, by convention over a ``:rate``
  series produced by the registry sampler;
* ``absence`` — the series stopped receiving samples for more than
  ``threshold`` ticks (a scrape target went silent).

Conditions must hold for ``for_ticks`` consecutive evaluations before
an alert **fires** and stay clear for ``clear_ticks`` before it
**resolves** — the classic pending/firing hysteresis, so a single noisy
sample neither pages nor flaps. Every transition appends one deduped
:class:`AlertEvent` to the engine's log; between transitions a firing
alert emits nothing, which is what makes the event log diffable in CI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ObsError
from repro.obs.drift import DEFAULT_DRIFT_DISTANCE, DEFAULT_SDC_DROP
from repro.obs.timeseries import RingStore


class AlertSeverity(enum.Enum):
    """How loudly an alert should page; orders critical-first."""

    CRITICAL = "critical"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        return 0 if self is AlertSeverity.CRITICAL else 1


class AlertState(enum.Enum):
    """Lifecycle of one (rule, scope) alert."""

    PENDING = "pending"
    FIRING = "firing"
    RESOLVED = "resolved"


_KINDS = ("threshold", "rate", "absence")
_COMPARISONS = ("above", "below")


@dataclass(frozen=True)
class AlertRule:
    """One declarative condition over one series (or series family)."""

    name: str
    series: str
    threshold: float
    comparison: str = "above"
    kind: str = "threshold"
    for_ticks: int = 1
    clear_ticks: int = 1
    severity: AlertSeverity = AlertSeverity.WARNING
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ObsError("alert rule needs a name")
        if not self.series:
            raise ObsError(f"alert rule {self.name} needs a series")
        if self.kind not in _KINDS:
            raise ObsError(f"alert rule {self.name} kind must be one of {_KINDS}")
        if self.comparison not in _COMPARISONS:
            raise ObsError(
                f"alert rule {self.name} comparison must be one of {_COMPARISONS}"
            )
        if self.for_ticks <= 0 or self.clear_ticks <= 0:
            raise ObsError(f"alert rule {self.name} windows must be positive")
        if self.kind == "absence" and self.threshold < 0:
            raise ObsError(f"alert rule {self.name} absence threshold must be >= 0")

    @property
    def wildcard(self) -> bool:
        return self.series.endswith("*")

    def scopes(self, store: RingStore) -> list[tuple[str, str]]:
        """``(series_name, scope)`` pairs this rule watches right now."""
        if not self.wildcard:
            return [(self.series, "fleet")]
        prefix = self.series[:-1]
        return [(name, name[len(prefix):]) for name in store.match(prefix)]

    def breached(self, value: float) -> bool:
        if self.comparison == "above":
            return value > self.threshold
        return value < self.threshold

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "series": self.series,
            "kind": self.kind,
            "comparison": self.comparison,
            "threshold": self.threshold,
            "for_ticks": self.for_ticks,
            "clear_ticks": self.clear_ticks,
            "severity": self.severity.value,
            "description": self.description,
        }


@dataclass(frozen=True)
class AlertEvent:
    """One deduped transition in the alert log."""

    tick: int
    rule: str
    scope: str
    transition: str  # "fired" | "resolved"
    value: float
    severity: str
    description: str = ""

    def format(self) -> str:
        return (
            f"[tick {self.tick:>4}] {self.severity.upper():8} "
            f"{self.rule} ({self.scope}) {self.transition} value={self.value:g}"
        )

    def to_dict(self) -> dict:
        return {
            "tick": self.tick,
            "rule": self.rule,
            "scope": self.scope,
            "transition": self.transition,
            "value": self.value,
            "severity": self.severity,
        }


@dataclass
class Alert:
    """Mutable state machine for one (rule, scope) pair."""

    rule: AlertRule
    scope: str
    state: AlertState = AlertState.PENDING
    since_tick: int | None = None
    last_value: float = 0.0
    fired_count: int = 0
    acked: bool = False
    bad_streak: int = 0
    good_streak: int = 0

    @property
    def firing(self) -> bool:
        return self.state is AlertState.FIRING

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "scope": self.scope,
            "state": self.state.value,
            "since_tick": self.since_tick,
            "last_value": self.last_value,
            "fired_count": self.fired_count,
            "acked": self.acked,
        }


class AlertEngine:
    """Evaluates rules each sampling tick; owns the deduped event log."""

    def __init__(self, rules: tuple[AlertRule, ...] | list[AlertRule]):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ObsError("alert rule names must be unique")
        self.rules = tuple(rules)
        self.events: list[AlertEvent] = []
        self.last_tick = 0
        self._alerts: dict[tuple[str, str], Alert] = {}

    # --- evaluation --------------------------------------------------------

    def _observe(self, alert: Alert, tick: int, value: float, bad: bool) -> AlertEvent | None:
        alert.last_value = value
        if bad:
            alert.bad_streak += 1
            alert.good_streak = 0
            if not alert.firing and alert.bad_streak >= alert.rule.for_ticks:
                alert.state = AlertState.FIRING
                alert.since_tick = tick
                alert.fired_count += 1
                alert.acked = False
                return AlertEvent(
                    tick=tick,
                    rule=alert.rule.name,
                    scope=alert.scope,
                    transition="fired",
                    value=value,
                    severity=alert.rule.severity.value,
                    description=alert.rule.description,
                )
        else:
            alert.good_streak += 1
            alert.bad_streak = 0
            if alert.firing and alert.good_streak >= alert.rule.clear_ticks:
                alert.state = AlertState.RESOLVED
                return AlertEvent(
                    tick=tick,
                    rule=alert.rule.name,
                    scope=alert.scope,
                    transition="resolved",
                    value=value,
                    severity=alert.rule.severity.value,
                    description=alert.rule.description,
                )
        return None

    def evaluate(self, store: RingStore, tick: int) -> list[AlertEvent]:
        """Evaluate every rule against ``store`` at ``tick``.

        A series with no fresh sample this tick (stale or missing)
        counts as *clear* for threshold/rate rules — so a completed
        job's per-scope alerts resolve instead of firing forever — and
        as *breached* for absence rules once staleness exceeds the
        threshold.
        """
        if tick <= self.last_tick and self.last_tick:
            raise ObsError(
                f"alert ticks must increase: got {tick} after {self.last_tick}"
            )
        self.last_tick = tick
        emitted: list[AlertEvent] = []
        for rule in self.rules:
            for series_name, scope in rule.scopes(store):
                ring = store.get(series_name)
                key = (rule.name, scope)
                alert = self._alerts.get(key)
                if rule.kind == "absence":
                    if ring is None or ring.last_tick() is None:
                        continue  # never reported; nothing to go silent
                    staleness = tick - ring.last_tick()
                    bad = staleness > rule.threshold
                    value = float(staleness)
                else:
                    if ring is None:
                        continue
                    fresh = ring.last_tick() == tick
                    value = ring.last() if fresh else 0.0
                    bad = fresh and rule.breached(value)
                    if alert is None and not bad:
                        continue  # don't materialize healthy scopes
                if alert is None:
                    alert = Alert(rule=rule, scope=scope)
                    self._alerts[key] = alert
                event = self._observe(alert, tick, value, bad)
                if event is not None:
                    emitted.append(event)
        self.events.extend(emitted)
        return emitted

    def finish(self, tick: int | None = None) -> list[AlertEvent]:
        """End of run: resolve anything still firing (deduped events)."""
        tick = self.last_tick + 1 if tick is None else tick
        emitted: list[AlertEvent] = []
        for alert in self._ordered_alerts():
            if alert.firing:
                alert.state = AlertState.RESOLVED
                alert.good_streak = alert.rule.clear_ticks
                alert.bad_streak = 0
                emitted.append(
                    AlertEvent(
                        tick=tick,
                        rule=alert.rule.name,
                        scope=alert.scope,
                        transition="resolved",
                        value=alert.last_value,
                        severity=alert.rule.severity.value,
                        description="end of run",
                    )
                )
        self.events.extend(emitted)
        self.last_tick = tick
        return emitted

    # --- reading -----------------------------------------------------------

    def _ordered_alerts(self) -> list[Alert]:
        order = {rule.name: index for index, rule in enumerate(self.rules)}
        return sorted(
            self._alerts.values(),
            key=lambda alert: (
                alert.rule.severity.rank,
                order[alert.rule.name],
                alert.scope,
            ),
        )

    def active(self) -> list[Alert]:
        """Firing alerts, critical first, in stable rule/scope order."""
        return [alert for alert in self._ordered_alerts() if alert.firing]

    def alert(self, rule: str, scope: str = "fleet") -> Alert | None:
        return self._alerts.get((rule, scope))

    def ack(self, rule: str, scope: str | None = None) -> int:
        """Acknowledge firing alerts of one rule; returns how many."""
        acked = 0
        for (name, alert_scope), alert in self._alerts.items():
            if name != rule or not alert.firing or alert.acked:
                continue
            if scope is not None and alert_scope != scope:
                continue
            alert.acked = True
            acked += 1
        return acked

    def to_dict(self) -> dict:
        """The alert-only dump (``tpupoint alerts --out``): rules, the
        event log, and still-active alerts — deliberately free of rings
        and per-shard state, so the file is identical at any shard count."""
        return {
            "version": 1,
            "last_tick": self.last_tick,
            "rules": [rule.to_dict() for rule in self.rules],
            "events": [event.to_dict() for event in self.events],
            "active": [alert.to_dict() for alert in self.active()],
        }


def builtin_rules(
    drift_distance: float = DEFAULT_DRIFT_DISTANCE,
    goodput_floor: float = 0.25,
    sdc_drop: float = DEFAULT_SDC_DROP,
) -> tuple[AlertRule, ...]:
    """The stock fleet rule set the health monitor installs.

    All series here are fleet-level (aggregated across shards or read
    from the shared ledger/default registry), so the rules evaluate
    identically at any shard count.
    """
    return (
        AlertRule(
            name="CIRCUIT_FLAP",
            series="profiler:circuit_trips:rate",
            kind="rate",
            threshold=0.0,
            comparison="above",
            for_ticks=1,
            clear_ticks=2,
            severity=AlertSeverity.CRITICAL,
            description="profile-RPC circuit breakers tripped this window",
        ),
        AlertRule(
            name="INGEST_SATURATION",
            series="serve:records_dropped:rate",
            kind="rate",
            threshold=0.0,
            comparison="above",
            for_ticks=1,
            clear_ticks=2,
            severity=AlertSeverity.WARNING,
            description="ingest queues shed records this window",
        ),
        AlertRule(
            name="QUARANTINE_GROWTH",
            series="serve:records_quarantined:rate",
            kind="rate",
            threshold=0.0,
            comparison="above",
            for_ticks=1,
            clear_ticks=2,
            severity=AlertSeverity.WARNING,
            description="the fleet quarantined records this window",
        ),
        AlertRule(
            name="GOODPUT_COLLAPSE",
            series="slo:goodput:ratio",
            kind="threshold",
            threshold=goodput_floor,
            comparison="below",
            for_ticks=2,
            clear_ticks=2,
            severity=AlertSeverity.CRITICAL,
            description="windowed goodput ratio fell through the floor",
        ),
        AlertRule(
            name="GOODPUT_BURN",
            series="slo:goodput:burning",
            kind="threshold",
            threshold=0.5,
            comparison="above",
            for_ticks=1,
            clear_ticks=1,
            severity=AlertSeverity.CRITICAL,
            description="goodput SLO burning in both burn-rate windows",
        ),
        AlertRule(
            name="INGEST_BURN",
            series="slo:ingest:burning",
            kind="threshold",
            threshold=0.5,
            comparison="above",
            for_ticks=1,
            clear_ticks=1,
            severity=AlertSeverity.WARNING,
            description="ingest SLO burning in both burn-rate windows",
        ),
        AlertRule(
            name="PHASE_DRIFT",
            series="drift:*",
            kind="threshold",
            threshold=drift_distance,
            comparison="above",
            for_ticks=1,
            clear_ticks=1,
            severity=AlertSeverity.WARNING,
            description="live phase fingerprint drifted from its baseline",
        ),
        AlertRule(
            name="CHIP_SDC_SUSPECT",
            series="chip_sdc:*",
            kind="threshold",
            threshold=sdc_drop,
            comparison="above",
            # Two consecutive bad windows before paging: one anomalous
            # window can be an excursion; a chip silently corrupting
            # its accumulators stays degraded.
            for_ticks=2,
            clear_ticks=2,
            severity=AlertSeverity.CRITICAL,
            description="chip MXU throughput dropped like a silent-data-corruption fault",
        ),
    )
