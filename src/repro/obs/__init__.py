"""repro.obs — self-observability for the TPUPoint toolchain.

TPUPoint characterizes opaque accelerator workloads; this package turns
the same lens on the toolchain itself, in the spirit of the paper's
Section V overhead accounting: every hot path (profiler poll/record
cycles, analyzer sweeps, optimizer trials, the fleet service) records
spans into a process-wide :class:`Tracer` and counts into a
:class:`MetricsRegistry`, so "where did the analyzer spend its time?"
and "how much overhead does the profiler add?" are answerable from a
chrome://tracing file and a Prometheus snapshot rather than guesswork.

Surface area:

* ``trace("analyzer.kmeans_sweep", ...)`` — nested, thread-safe spans;
  :func:`write_trace` exports chrome://tracing JSON (same viewer as the
  workload traces the analyzer emits).
* :func:`counter` / :func:`gauge` / :func:`histogram` — named families
  on the default registry; :func:`write_metrics` exports Prometheus
  text or JSON.
* ``tpupoint profile/analyze/fleet --trace-out/--metrics-out`` and
  ``tpupoint obs`` on the CLI.

Naming convention: ``repro_<subsystem>_<name>_<unit>`` (see
``docs/observability.md``).
"""

# metrics/tracing bind first: instrumented modules outside this package
# (profiler, analyzer, optimizer) re-enter `repro.obs` and read
# `obs.counter`/`obs.trace` at import time, so anything imported below
# them must never pull those modules in before these names exist.
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    counter,
    default_registry,
    gauge,
    histogram,
    render_prometheus,
    write_metrics,
)
from repro.obs.tracing import (
    DEFAULT_MAX_SPANS,
    NULL_SPAN,
    Span,
    Tracer,
    default_tracer,
    set_tracing_enabled,
    trace,
    write_trace,
)
from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertEvent,
    AlertRule,
    AlertSeverity,
    AlertState,
    builtin_rules,
)
from repro.obs.drift import (
    DEFAULT_SDC_DROP,
    DriftBand,
    PhaseDriftDetector,
    UtilizationAnomalyDetector,
    mix_distance,
    phase_fingerprint,
    window_fingerprint,
)
from repro.obs.health import HealthMonitor, HealthOptions
from repro.obs.inspect import (
    load_alerts,
    load_health,
    load_metrics,
    load_trace,
    parse_prometheus,
    summarize,
    summarize_alerts,
    summarize_health,
    summarize_metrics,
    summarize_trace,
)
from repro.obs.slo import DEFAULT_SLOS, SLOEngine, SLOSpec
from repro.obs.timeseries import (
    DEFAULT_RING_CAPACITY,
    RegistrySampler,
    RingBuffer,
    RingStore,
    histogram_quantile,
    merge_stores,
    sparkline,
)

#: Seconds-scale buckets for per-algorithm analyzer durations.
ALGORITHM_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


def ensure_core_metrics() -> None:
    """Register the toolchain's headline families on the default registry.

    Exposition should always include the metrics dashboards key on —
    profiler overhead, per-algorithm durations — even in a process where
    that subsystem never ran (e.g. ``tpupoint analyze`` never starts a
    profiler), so the families are declared here with the same names the
    instrumented modules use and render as zero-valued until touched.
    """
    gauge(
        "repro_profiler_overhead_fraction",
        "Real wall time spent inside profiler code over the whole run.",
    )
    histogram(
        "repro_analyzer_duration_seconds",
        "Wall time of one phase-detection run, by algorithm.",
        labels=("algorithm",),
        buckets=ALGORITHM_BUCKETS,
    )
    histogram(
        "repro_analyzer_sweep_seconds",
        "Wall time of one parameter sweep, by algorithm.",
        labels=("algorithm",),
        buckets=ALGORITHM_BUCKETS,
    )
    counter(
        "repro_analyzer_distance_passes_total",
        "Full self-pairwise distance passes over a feature matrix.",
    )
    counter(
        "repro_analyzer_cache_events_total",
        "Analysis memo-cache lookups and stores, by event.",
        labels=("event",),
    )
    gauge(
        "repro_parallel_queue_depth",
        "Tasks submitted to the analyzer worker pool and not yet finished.",
    )
    histogram(
        "repro_parallel_task_seconds",
        "Wall time of one worker-pool task, by pool label.",
        labels=("pool",),
    )
    counter(
        "repro_optimizer_trials_total",
        "Tuning trials measured, by acceptance outcome.",
        labels=("accepted",),
    )
    counter(
        "repro_optimizer_strategy_trials_total",
        "Autotune trials measured, by search strategy.",
        labels=("strategy",),
    )
    counter(
        "repro_optimizer_kb_lookups_total",
        "Knowledge-base lookups, by outcome (hit or miss).",
        labels=("outcome",),
    )
    counter(
        "repro_optimizer_warmstart_rollbacks_total",
        "Warm-started searches rolled back by the quality/throughput guard.",
    )
    gauge(
        "repro_optimizer_kb_entries",
        "Entries held by the most recently opened tuning knowledge base.",
    )
    counter(
        "repro_workloads_runs_total",
        "Workload runs driven by the runner, by workload key.",
        labels=("workload",),
    )
    gauge(
        "repro_serve_shards",
        "Shards in the current sharded-fleet topology.",
    )
    counter(
        "repro_serve_shard_pumps_total",
        "Per-shard pump passes, by trigger (batch-full vs global drain).",
        labels=("trigger",),
    )
    counter(
        "repro_serve_shard_rebalanced_tenants_total",
        "Tenants that changed shard across resize rebalances.",
    )


__all__ = [
    "ALGORITHM_BUCKETS",
    "Alert",
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "AlertSeverity",
    "AlertState",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SPANS",
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_SDC_DROP",
    "DEFAULT_SLOS",
    "DriftBand",
    "HealthMonitor",
    "HealthOptions",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "PhaseDriftDetector",
    "RegistrySampler",
    "RingBuffer",
    "RingStore",
    "SLOEngine",
    "SLOSpec",
    "Span",
    "Tracer",
    "UtilizationAnomalyDetector",
    "builtin_rules",
    "counter",
    "default_registry",
    "default_tracer",
    "ensure_core_metrics",
    "gauge",
    "histogram",
    "histogram_quantile",
    "load_alerts",
    "load_health",
    "load_metrics",
    "load_trace",
    "merge_stores",
    "mix_distance",
    "parse_prometheus",
    "phase_fingerprint",
    "render_prometheus",
    "set_tracing_enabled",
    "sparkline",
    "summarize",
    "summarize_alerts",
    "summarize_health",
    "summarize_metrics",
    "summarize_trace",
    "trace",
    "window_fingerprint",
    "write_metrics",
    "write_trace",
]
