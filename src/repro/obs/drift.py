"""Phase-signature drift detection for live jobs.

The detection half of the roadmap's SDC item: a job whose *behavior*
changes shows up first as a change in which operators dominate its
steps, long before anything errors. This module watches each live job's
**rolling window mix** — the per-operator shares of time spent in the
steps folded since the previous health sample — and measures its
distance from a baseline. The window is a *delta* of the live
analysis's per-operator duration accumulators between consecutive
observations, so it tracks what the job executed in the last scheduling
round even though the online scan retains no per-step history (and even
when the scan merges an eval or checkpoint excursion into the
surrounding training phase).

Two baselines, in preference order:

* **knowledge base** — when a :class:`TuningKnowledgeBase` is attached
  and holds entries, the baseline is the *nearest* stored signature and
  the distance is 1 minus the paper's Equation 1 set similarity
  (``|A ∩ B| / min(|A|, |B|)`` over top-K operator names — all a stored
  signature carries), so drift means "this job no longer looks like
  anything we have ever tuned";
* **self** — otherwise, the job's first full window mix, compared with
  the *weighted* form of the same overlap: similarity is the summed
  per-operator ``min`` of duration shares, so the distance is the total
  variation between the two mixes. Drift then means "this job stopped
  spending its time the way it started" (an eval or checkpoint
  excursion, or an SDC-corrupted operator mix) — and the weighting sees
  excursions the coarse name-set overlap cannot, because the simulator's
  operator vocabulary barely changes between phases.

Distances land in per-job ``drift:<job_id>`` ring series; the health
monitor's ``PHASE_DRIFT`` rule fires when one exceeds the calibrated
band and resolves when the job returns to its baseline (or completes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObsError

#: Distance above which a window counts as drifted. Calibrated against
#: the fleet workloads at the default chunk size: a healthy training
#: window jitters below ~0.17 against its baseline (incidental ops,
#: queueing variation, the end-of-run checkpoint), while an induced
#: excursion (e.g. a multi-GB checkpoint dominating the window) reads
#: 0.42+. 0.35 splits the gap with margin on both sides.
DEFAULT_DRIFT_DISTANCE = 0.35

#: Operators kept per fingerprint — matches the knowledge base's
#: signature width (``CriticalPhaseDetector.phase_signature`` default).
DEFAULT_FINGERPRINT_K = 8

#: Steps a job must have folded before its fingerprint is trusted.
DEFAULT_MIN_STEPS = 4

#: Relative windowed MXU-throughput drop above which a job reads as an
#: SDC suspect. Calibrated against the fleet workloads: healthy windows
#: jitter within ~0.10 of their pinned baseline rate, while the default
#: fault severity (0.25) reads ~0.25 from either model — a stuck-at
#: fault stretches op durations 1.33x (rate drop 0.25) and a bit flip
#: voids 25% of the window's MXU credit outright. 0.18 splits the gap.
DEFAULT_SDC_DROP = 0.18


@dataclass(frozen=True)
class DriftBand:
    """Calibration of the drift detector."""

    fire_distance: float = DEFAULT_DRIFT_DISTANCE
    top_k: int = DEFAULT_FINGERPRINT_K
    min_steps: int = DEFAULT_MIN_STEPS

    def __post_init__(self) -> None:
        if not 0.0 < self.fire_distance <= 1.0:
            raise ObsError("drift fire_distance must be in (0, 1]")
        if self.top_k <= 0:
            raise ObsError("drift top_k must be positive")
        if self.min_steps < 0:
            raise ObsError("drift min_steps must be >= 0")


def operator_totals(analysis) -> dict[str, float]:
    """Accumulated duration per operator name across all of a job's phases."""
    totals: dict[str, float] = {}
    for phase in analysis.phases.values():
        for stats in phase.operators.values():
            totals[stats.name] = totals.get(stats.name, 0.0) + stats.total_duration_us
    return totals


def mix_shares(window: dict[str, float]) -> dict[str, float]:
    """Normalize a duration window to per-operator shares summing to 1."""
    total = sum(window.values())
    if total <= 0:
        return {}
    return {name: duration / total for name, duration in window.items()}


def mix_distance(a: dict[str, float], b: dict[str, float]) -> float:
    """Total-variation distance between two share mixes, in [0, 1].

    ``1 - sum(min(share_a, share_b))`` — the weighted counterpart of
    Equation 1's set overlap: identical mixes read 0, disjoint ones 1.
    """
    if not a or not b:
        return 1.0
    overlap = sum(min(share, b[name]) for name, share in a.items() if name in b)
    return min(max(1.0 - overlap, 0.0), 1.0)


def window_fingerprint(
    window: dict[str, float], top_k: int = DEFAULT_FINGERPRINT_K
) -> frozenset[str]:
    """The ``top_k`` operators of one delta window, by time spent.

    Ties break by name so the fingerprint is deterministic regardless of
    dict iteration order. This is the set shape knowledge-base
    signatures store, used for the KB-nearest baseline.
    """
    ranked = sorted(window.items(), key=lambda item: (-item[1], item[0]))
    return frozenset(name for name, _ in ranked[:top_k])


def phase_fingerprint(analysis, top_k: int = DEFAULT_FINGERPRINT_K) -> frozenset[str]:
    """The job's *current* phase as an operator-name set.

    Reads the phase the online scan attributed the most recent step to
    and returns its ``top_k`` operators by accumulated duration. Coarser
    than the delta window (the scan merges similar-looking excursions
    into the surrounding phase); kept for KB-signature comparisons and
    offline summaries. Empty before any step has folded.
    """
    labels = analysis.labels
    if not labels:
        return frozenset()
    phase = analysis.phases.get(labels[-1])
    if phase is None:
        return frozenset()
    return frozenset(stats.name for stats in phase.top_operators(top_k))


def dominant_fingerprint(analysis, top_k: int = DEFAULT_FINGERPRINT_K) -> frozenset[str]:
    """The job's longest-running phase as an operator-name set.

    Offline summary view; NOT the live self-baseline — early in a run
    the one-off initialization phase still dominates by accumulated
    duration, so pinning a baseline to it would read every healthy
    training step as fully drifted.
    """
    phases = analysis.phases_by_duration()
    if not phases:
        return frozenset()
    return frozenset(stats.name for stats in phases[0].top_operators(top_k))


class PhaseDriftDetector:
    """Tracks windowed mix distance from baseline for every live job."""

    def __init__(self, knowledge=None, band: DriftBand | None = None):
        self.band = band or DriftBand()
        self.knowledge = knowledge
        self._totals: dict[str, dict[str, float]] = {}
        self._baselines: dict[str, dict[str, float]] = {}
        self.last_distance: dict[str, float] = {}

    def baseline(self, job_id: str) -> dict[str, float] | None:
        """The self-baseline share mix pinned for ``job_id`` (if any)."""
        return self._baselines.get(job_id)

    def _nearest_distance(self, fingerprint: frozenset[str]) -> float | None:
        if self.knowledge is None or not len(self.knowledge):
            return None
        nearest = self.knowledge.nearest(fingerprint)
        if nearest is None:
            return None
        return 1.0 - nearest.similarity

    def observe(self, job_id: str, analysis) -> float | None:
        """Fold one look at a live job; returns its drift distance.

        The first qualifying look only primes the delta accumulator (the
        history up to it still includes initialization one-offs) and
        returns None; every later look measures the operator time spent
        since the previous one. None also while the job is too young
        (fewer than ``min_steps`` folded steps), and an idle window (no
        operator time since the last look) holds the previous distance
        rather than inventing a fresh reading.
        """
        if analysis.steps_seen < self.band.min_steps:
            return None
        totals = operator_totals(analysis)
        previous = self._totals.get(job_id)
        self._totals[job_id] = totals
        if previous is None:
            return None
        window = {
            name: duration - previous.get(name, 0.0)
            for name, duration in totals.items()
            if duration - previous.get(name, 0.0) > 0.0
        }
        if not window:
            return self.last_distance.get(job_id)
        shares = mix_shares(window)
        distance = self._nearest_distance(
            window_fingerprint(window, self.band.top_k)
        )
        if distance is None:
            baseline = self._baselines.get(job_id)
            if baseline is None:
                # The first full window is the job's steady training mix
                # — pin it, so a healthy run reads ~0 and an eval or
                # checkpoint excursion reads high until the job returns
                # to its baseline mix.
                self._baselines[job_id] = shares
                baseline = shares
            distance = mix_distance(shares, baseline)
        self.last_distance[job_id] = distance
        return distance

    def forget(self, job_id: str) -> None:
        """Drop a job's window state, baseline, and last distance."""
        self._totals.pop(job_id, None)
        self._baselines.pop(job_id, None)
        self.last_distance.pop(job_id, None)


class UtilizationAnomalyDetector:
    """Tracks each live job's windowed MXU-throughput drop from baseline.

    The SDC signature the mix detector cannot see: a silently corrupted
    chip keeps executing the *same operators* (so the phase fingerprint
    and mix shares barely move for a pure accumulator fault) but
    delivers fewer useful MXU FLOPs per microsecond — stretched op
    durations for a stuck-at fault, voided accumulation credit for a
    bit flip. Like :class:`PhaseDriftDetector`, each look measures the
    *delta* window since the previous one (``mxu_flops`` over
    ``total_duration_us``) and pins the first full window as the job's
    healthy throughput baseline; the score is the relative drop from
    that baseline, clamped to [0, 1]. Peak FLOPs cancel out of the
    ratio, so the score is generation-independent.

    Scores land in per-chip ``chip_sdc:<chip>`` rings (the health
    monitor takes the max over a chip's resident jobs) and feed the
    ``CHIP_SDC_SUSPECT`` rule.
    """

    def __init__(self, band: DriftBand | None = None, fire_drop: float = DEFAULT_SDC_DROP):
        if not 0.0 < fire_drop <= 1.0:
            raise ObsError("sdc fire_drop must be in (0, 1]")
        self.band = band or DriftBand()
        self.fire_drop = fire_drop
        self._previous: dict[str, tuple[float, float]] = {}
        self._baselines: dict[str, float] = {}
        self.last_drop: dict[str, float] = {}

    def baseline(self, job_id: str) -> float | None:
        """The pinned healthy FLOPs/us rate for ``job_id`` (if any)."""
        return self._baselines.get(job_id)

    def observe(self, job_id: str, analysis) -> float | None:
        """Fold one look at a live job; returns its utilization drop.

        Mirrors :meth:`PhaseDriftDetector.observe`: None while the job
        is too young or on the priming look, and a window with no
        elapsed device time holds the previous score.
        """
        if analysis.steps_seen < self.band.min_steps:
            return None
        totals = (float(analysis.mxu_flops), float(analysis.total_duration_us))
        previous = self._previous.get(job_id)
        self._previous[job_id] = totals
        if previous is None:
            return None
        flops = totals[0] - previous[0]
        duration = totals[1] - previous[1]
        if duration <= 0.0:
            return self.last_drop.get(job_id)
        rate = max(flops, 0.0) / duration
        baseline = self._baselines.get(job_id)
        if baseline is None:
            # The first full window is the job's healthy throughput —
            # pin it, so a degraded chip reads as a persistent drop
            # rather than shifting its own baseline down.
            self._baselines[job_id] = rate
            baseline = rate
        if baseline <= 0.0:
            drop = 0.0
        else:
            drop = min(max(1.0 - rate / baseline, 0.0), 1.0)
        self.last_drop[job_id] = drop
        return drop

    def forget(self, job_id: str) -> None:
        """Drop a job's window state, baseline, and last score."""
        self._previous.pop(job_id, None)
        self._baselines.pop(job_id, None)
        self.last_drop.pop(job_id, None)
