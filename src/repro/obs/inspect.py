"""Parse and summarize observability dumps.

The read side of the exposition formats: ``tpupoint obs`` (and the CI
smoke job) feed the files written by ``--trace-out`` / ``--metrics-out``
back through these parsers, so a malformed dump fails loudly instead of
silently producing a file no viewer can load.

* :func:`load_trace` validates chrome://tracing JSON (the Trace Event
  Format both the workload and toolchain exporters emit).
* :func:`parse_prometheus` validates text exposition (``# HELP`` /
  ``# TYPE`` headers and ``name{labels} value`` samples).

Both raise :class:`~repro.errors.ObsError` on malformed input; the
``summarize_*`` helpers return the human-readable lines the CLI prints.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import ObsError

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_ESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape_label_value(value: str) -> str:
    """Invert the writer's label escaping (``\\\\``, ``\\"``, ``\\n``).

    A single left-to-right pass, so ``\\\\n`` round-trips to a literal
    backslash + ``n`` rather than a newline. Unknown escapes pass the
    escaped character through, matching Prometheus parser behavior.
    """
    return _ESCAPE_RE.sub(
        lambda match: _UNESCAPES.get(match.group(1), match.group(1)), value
    )


def load_trace(path: str | Path) -> list[dict]:
    """Load a chrome://tracing file; returns its event list."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ObsError(f"cannot read trace {path}: {error}") from error
    if isinstance(payload, list):
        events = payload
    elif isinstance(payload, dict) and isinstance(payload.get("traceEvents"), list):
        events = payload["traceEvents"]
    else:
        raise ObsError(f"{path} is not Trace Event Format (no traceEvents array)")
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ObsError(f"{path} holds a malformed trace event: {event!r}")
        if event["ph"] == "X" and ("ts" not in event or "dur" not in event):
            raise ObsError(f"{path}: complete event without ts/dur: {event!r}")
    return events


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse text exposition into ``{metric: [(labels, value), ...]}``."""
    samples: dict[str, list[tuple[dict, float]]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObsError(f"metrics line {number} is not exposition format: {line!r}")
        raw = match.group("value")
        try:
            value = float("inf") if raw == "+Inf" else float(raw)
        except ValueError as error:
            raise ObsError(f"metrics line {number} has a bad value: {line!r}") from error
        labels = {
            key: _unescape_label_value(raw_value)
            for key, raw_value in _LABEL_PAIR_RE.findall(match.group("labels") or "")
        }
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


def load_metrics(path: str | Path) -> dict[str, list[tuple[dict, float]]]:
    """Load a metrics dump (``.prom``/``.txt`` text or ``.json``)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ObsError(f"cannot read metrics {path}: {error}") from error
    if path.suffix == ".json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ObsError(f"{path} is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ObsError(f"{path} is not a metrics snapshot object")
        samples: dict[str, list[tuple[dict, float]]] = {}
        for name, family in payload.items():
            for sample in family.get("samples", []):
                value = sample.get("value", sample.get("count", 0))
                samples.setdefault(name, []).append(
                    (dict(sample.get("labels", {})), float(value))
                )
        return samples
    return parse_prometheus(text)


def _load_json_object(path: Path, what: str) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ObsError(f"cannot read {what} {path}: {error}") from error
    if not isinstance(payload, dict):
        raise ObsError(f"{path} is not a {what} object")
    return payload


def load_health(path: str | Path) -> dict:
    """Load and validate a ``tpupoint health --out`` dump.

    Checks the ring payloads structurally (via
    :meth:`~repro.obs.timeseries.RingStore.from_dict`) so a torn ring —
    mismatched tick/value arrays, non-increasing ticks — fails loudly.
    Returns the validated payload.
    """
    from repro.obs.timeseries import RingStore

    path = Path(path)
    payload = _load_json_object(path, "health dump")
    rings = payload.get("rings")
    if rings is None:
        raise ObsError(f"{path} is not a health dump (no 'rings' object)")
    try:
        RingStore.from_dict(rings)
        for label, shard_rings in (payload.get("shards") or {}).items():
            if not isinstance(label, str):
                raise ObsError(f"bad shard label {label!r}")
            RingStore.from_dict(shard_rings)
    except ObsError as error:
        raise ObsError(f"{path} holds a malformed ring dump: {error}") from error
    alerts = payload.get("alerts")
    if alerts is not None:
        _validate_alerts(path, alerts)
    return payload


_EVENT_KEYS = ("tick", "rule", "scope", "transition")


def _validate_alerts(path: Path, payload: dict) -> None:
    if not isinstance(payload, dict):
        raise ObsError(f"{path} holds a malformed alert dump: not an object")
    events = payload.get("events")
    if not isinstance(events, list):
        raise ObsError(f"{path} holds a malformed alert dump: no 'events' array")
    for event in events:
        if not isinstance(event, dict) or any(key not in event for key in _EVENT_KEYS):
            raise ObsError(
                f"{path} holds a malformed alert event (needs "
                f"{'/'.join(_EVENT_KEYS)}): {event!r}"
            )
        if event["transition"] not in ("fired", "resolved"):
            raise ObsError(
                f"{path} holds an alert event with a bad transition: {event!r}"
            )
    for key in ("rules", "active"):
        entries = payload.get(key, [])
        if not isinstance(entries, list) or any(
            not isinstance(entry, dict) for entry in entries
        ):
            raise ObsError(f"{path} holds a malformed alert dump: bad {key!r} array")


def load_alerts(path: str | Path) -> dict:
    """Load and validate a ``tpupoint alerts --out`` dump."""
    path = Path(path)
    payload = _load_json_object(path, "alert dump")
    if "events" not in payload or "rules" not in payload:
        raise ObsError(f"{path} is not an alert dump (no 'events'/'rules')")
    _validate_alerts(path, payload)
    return payload


def summarize_trace(path: str | Path) -> list[str]:
    """Human-readable summary lines for one trace file."""
    events = load_trace(path)
    complete = [e for e in events if e.get("ph") == "X"]
    names = sorted({e["name"] for e in complete})
    with_parent = sum(1 for e in complete if "parent_id" in e.get("args", {}))
    lines = [
        f"{path}: chrome://tracing, {len(events)} events "
        f"({len(complete)} spans, {with_parent} nested, {len(names)} names)",
    ]
    for event in sorted(complete, key=lambda e: -float(e.get("dur", 0.0)))[:5]:
        lines.append(f"  {float(event['dur']) / 1e3:10.3f} ms  {event['name']}")
    return lines


def summarize_metrics(path: str | Path) -> list[str]:
    """Human-readable summary lines for one metrics file."""
    samples = load_metrics(path)
    total = sum(len(entries) for entries in samples.values())
    lines = [f"{path}: {len(samples)} metrics, {total} samples"]
    for name in sorted(samples):
        entries = samples[name]
        if len(entries) == 1 and not entries[0][0]:
            lines.append(f"  {name} = {entries[0][1]:g}")
        else:
            lines.append(f"  {name} ({len(entries)} series)")
    return lines


def summarize_health(path: str | Path) -> list[str]:
    """Human-readable summary lines for one health dump."""
    payload = load_health(path)
    rings = payload.get("rings", {}).get("series", {})
    points = sum(len(ring.get("ticks", [])) for ring in rings.values())
    shards = payload.get("shards") or {}
    lines = [
        f"{path}: health dump @ tick {payload.get('tick', 0)}, "
        f"{len(rings)} fleet series ({points} points), {len(shards)} shard views",
    ]
    for status in payload.get("slos", []):
        flame = " BURNING" if status.get("burning") else ""
        lines.append(
            f"  slo {status.get('name')}: ratio {status.get('ratio', 0.0):.1%} "
            f"target {status.get('target', 0.0):.0%}{flame}"
        )
    alerts = payload.get("alerts") or {}
    active = alerts.get("active", [])
    lines.append(f"  alerts: {len(alerts.get('events', []))} events, {len(active)} active")
    for alert in active:
        lines.append(
            f"    {alert.get('rule')} ({alert.get('scope')}) "
            f"since tick {alert.get('since_tick')}"
        )
    return lines


def summarize_alerts(path: str | Path) -> list[str]:
    """Human-readable summary lines for one alert dump."""
    payload = load_alerts(path)
    events = payload.get("events", [])
    fired = sum(1 for event in events if event.get("transition") == "fired")
    lines = [
        f"{path}: alert dump, {len(payload.get('rules', []))} rules, "
        f"{len(events)} events ({fired} fired), "
        f"{len(payload.get('active', []))} active",
    ]
    for event in events:
        lines.append(
            f"  [tick {event['tick']:>4}] {event['rule']} "
            f"({event['scope']}) {event['transition']}"
        )
    return lines


def summarize(path: str | Path) -> list[str]:
    """Dispatch on file shape: trace, metrics, health, or alert dump."""
    path = Path(path)
    if path.suffix == ".json":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ObsError(f"cannot read {path}: {error}") from error
        if isinstance(payload, list) or (
            isinstance(payload, dict) and "traceEvents" in payload
        ):
            return summarize_trace(path)
        if isinstance(payload, dict) and "rings" in payload:
            return summarize_health(path)
        if isinstance(payload, dict) and "events" in payload and "rules" in payload:
            return summarize_alerts(path)
        return summarize_metrics(path)
    return summarize_metrics(path)
