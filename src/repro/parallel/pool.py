"""A deterministic worker pool for the analyzer's sweep fan-out.

The clustering sweeps (k-means k = 1..15 with restarts, DBSCAN
min_samples relabelings) are embarrassingly parallel, but naive
parallelism breaks reproducibility: a shared RNG consumed in completion
order yields different restarts run-to-run. :class:`WorkerPool` makes
the parallel path bit-identical to the serial one by construction:

* every task draws randomness only from its own named substream
  (:func:`task_rng`, derived via :mod:`repro.rng` from a root seed plus
  a stable task key — no task ever observes another task's draws);
* :meth:`WorkerPool.map` returns results in submission order, so any
  reduction over them (best-of-restarts, per-k tables) sees the same
  sequence regardless of worker count or completion order.

``workers <= 1`` runs tasks inline with zero thread overhead — the
serial reference path — and any ``workers`` value produces the same
results, which :mod:`tests.property.test_prop_parallel_equiv` pins.
Threads (not processes) are the backend: the sweeps bottleneck on
numpy/BLAS kernels that release the GIL, and threads share the feature
matrix without pickling it per task.

Queue depth and per-task latency are observable via :mod:`repro.obs`
(``repro_parallel_queue_depth``, ``repro_parallel_task_seconds``,
``repro_parallel_tasks_total``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro import obs
from repro import rng as rng_mod
from repro.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

MAX_WORKERS = 64

_QUEUE_DEPTH = obs.gauge(
    "repro_parallel_queue_depth",
    "Tasks submitted to the analyzer worker pool and not yet finished.",
)
_TASK_SECONDS = obs.histogram(
    "repro_parallel_task_seconds",
    "Wall time of one worker-pool task, by pool label.",
    labels=("pool",),
)
_TASKS_TOTAL = obs.counter(
    "repro_parallel_tasks_total",
    "Tasks executed by the analyzer worker pool, by pool label.",
    labels=("pool",),
)


def task_rng(seed: int, key: str) -> np.random.Generator:
    """A deterministic per-task generator, independent of all other tasks.

    Same ``(seed, key)`` → same stream, on any worker, in any order —
    the property that makes parallel sweeps bit-identical to serial.
    """
    return rng_mod.stream(key, seed)


class WorkerPool:
    """Deterministic ordered-map executor over a fixed thread count.

    Usable as a context manager; with ``workers <= 1`` (the default) no
    threads are created and :meth:`map` degenerates to an inline loop.
    """

    def __init__(self, workers: int = 1, label: str = "analyzer"):
        if workers < 0:
            raise ConfigurationError("workers must be non-negative")
        if workers > MAX_WORKERS:
            raise ConfigurationError(f"workers must be <= {MAX_WORKERS}")
        self.workers = max(int(workers), 1)
        self.label = label
        self._executor: ThreadPoolExecutor | None = None

    # --- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the backing threads (idempotent; inline pools are no-ops)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix=f"repro-{self.label}"
            )
        return self._executor

    # --- execution ---------------------------------------------------------

    def _run_one(self, fn: Callable[[T], R], item: T) -> R:
        began = time.perf_counter()
        try:
            return fn(item)
        finally:
            _TASK_SECONDS.labels(pool=self.label).observe(time.perf_counter() - began)
            _TASKS_TOTAL.labels(pool=self.label).inc()
            _QUEUE_DEPTH.labels().dec()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results come back in item order.

        The first task exception propagates (after all tasks finish or
        are cancelled), exactly as the serial loop would raise it.
        """
        tasks: Sequence[T] = list(items)
        if not tasks:
            return []
        _QUEUE_DEPTH.labels().inc(len(tasks))
        with obs.trace(
            "parallel.map", pool=self.label, tasks=len(tasks), workers=self.workers
        ):
            if self.is_serial:
                return [self._run_one(fn, item) for item in tasks]
            executor = self._ensure_executor()
            futures = [executor.submit(self._run_one, fn, item) for item in tasks]
            return [future.result() for future in futures]

    def starmap(self, fn: Callable[..., R], items: Iterable[tuple]) -> list[R]:
        """:meth:`map` over argument tuples."""
        return self.map(lambda args: fn(*args), items)


def resolve_pool(pool: "WorkerPool | int | None", label: str = "analyzer") -> WorkerPool:
    """Coerce a pool argument (pool instance, worker count, or None)."""
    if pool is None:
        return WorkerPool(1, label=label)
    if isinstance(pool, WorkerPool):
        return pool
    return WorkerPool(int(pool), label=label)
