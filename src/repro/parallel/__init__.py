"""repro.parallel — deterministic fan-out for the analyzer engine.

See :mod:`repro.parallel.pool` for the reproducibility contract: ordered
results plus per-task RNG substreams make any worker count bit-identical
to the serial path.
"""

from repro.parallel.pool import MAX_WORKERS, WorkerPool, resolve_pool, task_rng

__all__ = ["MAX_WORKERS", "WorkerPool", "resolve_pool", "task_rng"]
