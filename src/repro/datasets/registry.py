"""The datasets of Table I.

Total sizes are the paper's exact figures. Example counts are the public
dataset statistics; per-example CPU costs are calibrated so that the
host/TPU balance of each workload lands where the paper's Figures 10-13
put it (image decode is expensive, pre-tokenized text is cheap).
"""

from __future__ import annotations

from repro import units
from repro.datasets.base import DatasetKind, DatasetSpec
from repro.errors import ConfigurationError

SQUAD = DatasetSpec(
    name="SQuAD",
    kind=DatasetKind.TEXT,
    total_bytes=units.mib(422.27),
    num_examples=87_599,
    example_shape=(128, 3),
    device_bytes_per_example=128 * 3 * 4,
    decode_cpu_us=18.0,
    preprocess_cpu_us=40.0,
)

MRPC = DatasetSpec(
    name="MRPC",
    kind=DatasetKind.TEXT,
    total_bytes=units.mib(2.85),
    num_examples=3_668,
    example_shape=(128, 3),
    device_bytes_per_example=128 * 3 * 4,
    decode_cpu_us=14.0,
    preprocess_cpu_us=30.0,
)

MNLI = DatasetSpec(
    name="MNLI",
    kind=DatasetKind.TEXT,
    total_bytes=units.mib(430.61),
    num_examples=392_702,
    example_shape=(128, 3),
    device_bytes_per_example=128 * 3 * 4,
    decode_cpu_us=16.0,
    preprocess_cpu_us=36.0,
)

COLA = DatasetSpec(
    name="CoLA",
    kind=DatasetKind.TEXT,
    total_bytes=units.mib(1.44),
    num_examples=8_551,
    example_shape=(128, 3),
    device_bytes_per_example=128 * 3 * 4,
    decode_cpu_us=12.0,
    preprocess_cpu_us=26.0,
)

CIFAR10 = DatasetSpec(
    name="CIFAR10",
    kind=DatasetKind.IMAGE,
    total_bytes=units.mib(178.87),
    num_examples=60_000,
    example_shape=(32, 32, 3),
    device_bytes_per_example=32 * 32 * 3 * 4,
    decode_cpu_us=22.0,
    preprocess_cpu_us=35.0,
)

MNIST = DatasetSpec(
    name="MNIST",
    kind=DatasetKind.IMAGE,
    total_bytes=units.mib(56.21),
    num_examples=70_000,
    example_shape=(28, 28, 1),
    device_bytes_per_example=28 * 28 * 4,
    decode_cpu_us=8.0,
    preprocess_cpu_us=15.0,
)

COCO = DatasetSpec(
    name="COCO",
    kind=DatasetKind.IMAGE,
    total_bytes=units.gib(48.49),
    num_examples=118_287,
    example_shape=(640, 640, 3),
    device_bytes_per_example=640 * 640 * 3 * 4,
    decode_cpu_us=12_000.0,
    preprocess_cpu_us=11_000.0,
)

IMAGENET = DatasetSpec(
    name="ImageNet",
    kind=DatasetKind.IMAGE,
    total_bytes=units.gib(143.38),
    num_examples=1_281_167,
    example_shape=(224, 224, 3),
    device_bytes_per_example=224 * 224 * 3 * 4,
    decode_cpu_us=1_350.0,
    preprocess_cpu_us=650.0,
)

_ALL: dict[str, DatasetSpec] = {
    spec.name.lower(): spec
    for spec in (SQUAD, MRPC, MNLI, COLA, CIFAR10, MNIST, COCO, IMAGENET)
}


def dataset(name: str) -> DatasetSpec:
    """Look up a dataset by (case-insensitive) name; '-half' suffixes work."""
    key = name.lower()
    if key.endswith("-half"):
        return dataset(key.removesuffix("-half")).halved()
    try:
        return _ALL[key]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known: {sorted(_ALL)}"
        ) from exc


def all_datasets() -> list[DatasetSpec]:
    """Every registered full-size dataset."""
    return list(_ALL.values())
