"""Dataset descriptors.

The simulator never holds real data; a dataset is a descriptor carrying
exactly the properties that influence observed behaviour: total size and
example count (storage-read pressure), per-example decode/preprocess CPU
cost (host pressure), and the staged example size the infeed must move.
Sizes come from Table I of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.storage.objects import DatasetShard, shard_dataset


class DatasetKind(enum.Enum):
    """Broad input modality (drives which preprocessing ops appear)."""

    TEXT = "text"
    IMAGE = "image"


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one training dataset.

    Attributes:
        name: dataset name as used in the paper ("SQuAD", "ImageNet", ...).
        kind: input modality.
        total_bytes: serialized size in cloud storage.
        num_examples: number of training examples.
        example_shape: per-example staged tensor shape (what infeed moves),
            as a tuple of dims; dtype is implied float32/int32 by bytes.
        device_bytes_per_example: bytes per example after preprocessing.
        decode_cpu_us: serial host-CPU microseconds to decode one example.
        preprocess_cpu_us: serial host-CPU microseconds to augment/reformat
            one example.
    """

    name: str
    kind: DatasetKind
    total_bytes: float
    num_examples: int
    example_shape: tuple[int, ...]
    device_bytes_per_example: float
    decode_cpu_us: float
    preprocess_cpu_us: float

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.num_examples <= 0:
            raise ConfigurationError("dataset must have positive size and examples")
        if self.device_bytes_per_example <= 0:
            raise ConfigurationError("device example size must be positive")
        if self.decode_cpu_us < 0 or self.preprocess_cpu_us < 0:
            raise ConfigurationError("CPU costs must be non-negative")

    @property
    def storage_bytes_per_example(self) -> float:
        """Average serialized example size in storage."""
        return self.total_bytes / self.num_examples

    def halved(self) -> "DatasetSpec":
        """The reduced-dataset variant used in the paper's Figures 12/13."""
        return replace(
            self,
            name=f"{self.name}-half",
            total_bytes=self.total_bytes / 2,
            num_examples=max(1, self.num_examples // 2),
        )

    def shards(self, num_shards: int = 0) -> list[DatasetShard]:
        """Materialize shard objects for a storage bucket.

        With ``num_shards=0`` a sensible default of roughly 100 MiB per
        shard is chosen, mirroring common TFRecord layouts.
        """
        if num_shards <= 0:
            num_shards = max(1, int(self.total_bytes / (100 * 1024 * 1024)))
        return shard_dataset(self.name, self.total_bytes, self.num_examples, num_shards)
