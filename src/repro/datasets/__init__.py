"""Dataset substrate: Table I's datasets as synthetic descriptors."""

from repro.datasets.base import DatasetKind, DatasetSpec
from repro.datasets.registry import (
    CIFAR10,
    COCO,
    COLA,
    IMAGENET,
    MNIST,
    MNLI,
    MRPC,
    SQUAD,
    all_datasets,
    dataset,
)

__all__ = [
    "CIFAR10",
    "COCO",
    "COLA",
    "DatasetKind",
    "DatasetSpec",
    "IMAGENET",
    "MNIST",
    "MNLI",
    "MRPC",
    "SQUAD",
    "all_datasets",
    "dataset",
]
