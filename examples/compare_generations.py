"""Compare a workload across TPU generations — performance, energy, money.

The paper's Observation 5: the faster the accelerator, the bigger the
share of time (and therefore billing) lost to non-computational
overhead. This example profiles the same workload on TPUv2 and TPUv3,
aligns the runs operator-by-operator, and prices the difference.

Run:
    python examples/compare_generations.py [workload]
"""

import sys

from repro import TPUPoint, WorkloadSpec, build_estimator
from repro.compare import compare_runs
from repro.costs import run_cost


def _profiled(key: str, generation: str):
    estimator = build_estimator(WorkloadSpec(key, generation=generation))
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    summary = estimator.train()
    tpupoint.Stop()
    return estimator, summary, tpupoint.records


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "bert-squad"

    est_v2, summary_v2, records_v2 = _profiled(key, "v2")
    est_v3, summary_v3, records_v3 = _profiled(key, "v3")

    comparison = compare_runs(
        f"{key} on TPUv2", summary_v2, records_v2,
        f"{key} on TPUv3", summary_v3, records_v3,
    )
    print("=== run comparison ===")
    print(comparison.format(top=6))

    cost_v2 = run_cost(summary_v2, "v2")
    cost_v3 = run_cost(summary_v3, "v3")
    print("\n=== TPUv2 economics ===")
    print(cost_v2.format())
    print("\n=== TPUv3 economics ===")
    print(cost_v3.format())

    print("\n=== the Observation 5 punchline ===")
    print(
        f"v3 finishes {comparison.speedup:.2f}x faster but pays "
        f"{cost_v3.idle_dollar_fraction:.0%} of its TPU bill for idle time "
        f"(v2: {cost_v2.idle_dollar_fraction:.0%})"
    )
    per_epoch_v2 = cost_v2.total_dollars
    per_epoch_v3 = cost_v3.total_dollars
    cheaper = "v2" if per_epoch_v2 < per_epoch_v3 else "v3"
    print(
        f"this run costs ${per_epoch_v2:.4f} on v2 vs ${per_epoch_v3:.4f} on v3 "
        f"-> {cheaper} is the cheaper device for this workload"
    )


if __name__ == "__main__":
    main()
