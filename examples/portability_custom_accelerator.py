"""Portability: run TPUPoint against a non-TPU accelerator.

Section VIII of the paper argues TPUPoint is portable because it works
at the programming-language level — "simply changing the low-level
library function calls ... makes TPUPoint's profiling and optimization
available on a wide variety of platforms." In this reproduction the
low-level layer is the chip spec: define one for your accelerator and
every part of the toolchain (profiler, analyzer, optimizer, economics)
works unchanged.

Run:
    python examples/portability_custom_accelerator.py
"""

from repro import TPUPoint, units
from repro.costs import run_cost
from repro.datasets.registry import SQUAD
from repro.models.bert import BertModel
from repro.tpu.specs import TpuChipSpec

# A hypothetical inference/training NPU: one big 256x256 systolic array,
# a third of a TPUv2's peak, slower HBM, cheaper to rent.
NPU = TpuChipSpec(
    generation="npu-1",  # custom accelerators use free-form labels
    mxu_count=1,
    mxu_dim=256,
    peak_flops=15e12,
    hbm_bytes=units.gib(8.0),
    hbm_bandwidth=300e9,
    clock_hz=800e6,
    tdp_watts=120.0,
    infeed_bandwidth=5e9,
)


def main() -> None:
    estimator = BertModel().build_estimator(SQUAD, generation=NPU)
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    summary = estimator.train()
    tpupoint.Stop()

    print("=== BERT-SQuAD on a custom NPU ===")
    print(f"wall time : {units.format_duration(summary.wall_us)}")
    print(f"idle      : {summary.tpu_idle_fraction:.1%}")
    print(f"MXU util  : {summary.mxu_utilization:.1%}")

    result = tpupoint.analyzer().ols_phases()
    print(f"phases    : {result.num_phases} "
          f"(top-3 coverage {result.coverage().top(3):.1%})")

    cost = run_cost(summary, NPU, hourly_usd=1.75)
    print("\n=== economics at $1.75/h ===")
    print(cost.format())


if __name__ == "__main__":
    main()
