"""Characterize the paper's workload suite across TPU generations.

Reproduces the Section VI study in miniature: run every Table I workload
on TPUv2 and TPUv3, report idle time and MXU utilization (Figures 10-11),
and list the dominant phase's top operators per detection algorithm
(Table II's cells) for one workload of your choice.

Run:
    python examples/characterize_workloads.py [workload-for-table2]
"""

import sys

from repro import PAPER_WORKLOADS, TPUPoint, WorkloadSpec, build_estimator, run_workload
from repro.core.analyzer import TPUPointAnalyzer, top_operators_of_longest_phase
from repro.runtime.events import DeviceKind


def characterize_suite() -> None:
    print(f"{'workload':18s} {'v2 idle':>8s} {'v3 idle':>8s} {'v2 MXU':>8s} {'v3 MXU':>8s}")
    sums = {"idle-v2": 0.0, "idle-v3": 0.0, "mxu-v2": 0.0, "mxu-v3": 0.0}
    for key in PAPER_WORKLOADS:
        row = {}
        for generation in ("v2", "v3"):
            run = run_workload(WorkloadSpec(key, generation=generation))
            row[f"idle-{generation}"] = run.idle_fraction
            row[f"mxu-{generation}"] = run.mxu_utilization
            sums[f"idle-{generation}"] += run.idle_fraction
            sums[f"mxu-{generation}"] += run.mxu_utilization
        print(
            f"{key:18s} {row['idle-v2']:>8.1%} {row['idle-v3']:>8.1%} "
            f"{row['mxu-v2']:>8.1%} {row['mxu-v3']:>8.1%}"
        )
    n = len(PAPER_WORKLOADS)
    print(
        f"{'average':18s} {sums['idle-v2']/n:>8.1%} {sums['idle-v3']/n:>8.1%} "
        f"{sums['mxu-v2']/n:>8.1%} {sums['mxu-v3']/n:>8.1%}"
    )
    print("paper averages:      38.9%    43.5%    22.7%    11.3%")


def table2_cell(key: str) -> None:
    print(f"\n=== top-5 operators of the dominant phase: {key} (TPUv2) ===")
    estimator = build_estimator(WorkloadSpec(key))
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    estimator.train()
    tpupoint.Stop()
    analyzer = TPUPointAnalyzer(tpupoint.records)
    for algorithm, result in (
        ("k-means", analyzer.kmeans_phases(k=5)),
        ("DBSCAN", analyzer.dbscan_phases(min_samples=30)),
        ("OLS", analyzer.ols_phases(0.70)),
    ):
        cell = top_operators_of_longest_phase(result.phases)
        print(f"{algorithm:8s} TPU : {', '.join(cell[DeviceKind.TPU].operators)}")
        print(f"{algorithm:8s} host: {', '.join(cell[DeviceKind.HOST].operators)}")


def main() -> None:
    characterize_suite()
    table2_cell(sys.argv[1] if len(sys.argv) > 1 else "bert-squad")


if __name__ == "__main__":
    main()
