"""Fast-forward into a detected phase using checkpoint association.

Section IV-C: TPUPoint records the closest checkpoint to each phase so
an application can be restarted *at* the interesting phase instead of
replaying from step zero. This example detects phases, picks the
dominant one, and compares the cost of fast-forwarding (restore the
associated checkpoint, then warm-start a session from it) against
replaying the full prefix.

Run:
    python examples/phase_fast_forward.py
"""

from repro import (
    SessionPlan,
    TPUPoint,
    WorkloadSpec,
    build_estimator,
    units,
)
from repro.core.analyzer import associate_checkpoints, fast_forward_cost_us
from repro.models.registry import workload
from repro.workloads.runner import build_estimator as build


def main() -> None:
    spec = WorkloadSpec("dcgan-cifar10")
    estimator = build_estimator(spec)
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    estimator.train()
    tpupoint.Stop()

    analyzer = tpupoint.analyzer()
    result = analyzer.ols_phases()
    dominant = max(result.phases, key=lambda p: p.total_duration_us)
    print(f"dominant phase: #{dominant.phase_id} "
          f"({dominant.num_steps} steps, "
          f"{units.format_duration(dominant.total_duration_us)})")

    associations = associate_checkpoints(
        result.phases, estimator.checkpoint_store, analyzer.steps
    )
    association = associations[dominant.phase_id]
    checkpoint = association.checkpoint
    print(f"associated checkpoint: model.ckpt-{checkpoint.step} "
          f"(distance {association.distance_steps} steps)")

    # Cost of fast-forwarding: restore the checkpoint...
    restore_us = fast_forward_cost_us(association, estimator.checkpoint_store)
    print(f"restore cost: {units.format_duration(restore_us)}")

    # ...then run a *short* warm-started session inside the phase instead
    # of replaying everything before it.
    entry = workload(spec.key)
    defaults = entry.model.defaults(entry.dataset)
    replay_estimator = build(spec)
    replay_estimator.checkpoint_store.save(checkpoint)
    short_plan = SessionPlan(
        train_steps=min(checkpoint.step + 25, defaults.train_steps),
        batch_size=defaults.batch_size,
        iterations_per_loop=defaults.iterations_per_loop,
        warm_start=True,
    )
    warm = entry.model.build_estimator(
        entry.dataset, plan=short_plan
    )
    warm.checkpoint_store.save(checkpoint)
    warm_summary = warm.train()
    print(f"warm-started 25-step probe of the phase: "
          f"{units.format_duration(warm_summary.wall_us)}")

    # Versus replaying the prefix from step zero.
    full_prefix_us = sum(
        phase.total_duration_us
        for phase in result.phases
        if phase.start_us < dominant.start_us
    ) + dominant.total_duration_us * (25 / max(dominant.num_steps, 1))
    print(f"replaying from step zero would cost about "
          f"{units.format_duration(full_prefix_us + warm_summary.wall_us)}")
    saved = full_prefix_us - restore_us
    print(f"fast-forwarding saves roughly {units.format_duration(max(saved, 0.0))}")


if __name__ == "__main__":
    main()
