"""Scale a workload to a multi-chip slice — and let TPUPoint fix it.

The paper stayed on single-TPU instances because multi-TPU execution
"requires significant tuning and optimization". This example shows the
extension in action: ResNet-ImageNet on a v2-8 slice (4 chips) runs into
the shared host pipeline's wall — then TPUPoint-Optimizer tunes that
pipeline online and recovers most of the lost scaling, automatically.

Run:
    python examples/scale_to_a_pod_slice.py [chips]
"""

import sys

from repro import TPUPoint, units
from repro.costs import run_cost
from repro.datasets.registry import IMAGENET
from repro.models.resnet import ResNetModel
from repro.tpu.slice import scaling_efficiency, tpu_slice


def main() -> None:
    chips = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    # Reference: one chip with the zoo-default pipeline.
    single = ResNetModel().build_estimator(IMAGENET, generation="v2").train()
    print(f"1 chip              : {units.format_duration(single.wall_us)} "
          f"(idle {single.tpu_idle_fraction:.1%}, MXU {single.mxu_utilization:.1%})")

    # The slice with the same (untouched) pipeline: the host wall.
    board = tpu_slice("v2", chips)
    untuned = ResNetModel().build_estimator(IMAGENET, generation=board).train()
    eff = scaling_efficiency(single.wall_us, untuned.wall_us, chips)
    print(f"{chips} chips, default   : {units.format_duration(untuned.wall_us)} "
          f"(idle {untuned.tpu_idle_fraction:.1%}, MXU {untuned.mxu_utilization:.1%}, "
          f"scaling efficiency {eff:.0%})")

    # TPUPoint-Optimizer owns the run and tunes the pipeline online.
    estimator = ResNetModel().build_estimator(IMAGENET, generation=board)
    result = TPUPoint(estimator).optimize()
    optimized = result.summary
    eff_opt = scaling_efficiency(single.wall_us, optimized.wall_us, chips)
    print(f"{chips} chips, optimized : {units.format_duration(optimized.wall_us)} "
          f"(idle {optimized.tpu_idle_fraction:.1%}, MXU {optimized.mxu_utilization:.1%}, "
          f"scaling efficiency {eff_opt:.0%})")
    if result.tuning is not None:
        print(f"tuned configuration : {result.tuning.best_config}")

    # And the money: what the host wall costs at slice prices.
    wasted = run_cost(untuned, board)
    fixed = run_cost(optimized, board)
    print(f"\nTPU bill, default   : ${wasted.tpu_dollars:.4f} "
          f"({wasted.idle_dollar_fraction:.0%} paid for idle time)")
    print(f"TPU bill, optimized : ${fixed.tpu_dollars:.4f} "
          f"({fixed.idle_dollar_fraction:.0%} paid for idle time)")
    print(f"saved by tuning     : ${wasted.tpu_dollars - fixed.tpu_dollars:.4f} "
          f"on this run alone")


if __name__ == "__main__":
    main()
