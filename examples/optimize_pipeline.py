"""Tune a badly written input pipeline with TPUPoint-Optimizer.

Reproduces the Section VII study: a "naive" implementation (single-
threaded decode, no prefetching, one storage stream) leaves the TPU
mostly idle; TPUPoint-Optimizer detects the performance-critical phase
online, hill-climbs the adjustable parameters while checking output
quality, and finishes the run with the improved configuration.

Run:
    python examples/optimize_pipeline.py [workload] [generation]
Defaults: naive-retinanet-coco on TPUv2.
"""

import sys

from repro import TPUPoint, WorkloadSpec, build_estimator, run_workload
from repro import units


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "naive-retinanet-coco"
    generation = sys.argv[2] if len(sys.argv) > 2 else "v2"
    spec = WorkloadSpec(key, generation=generation)

    # Reference: the same workload left untouched.
    baseline = run_workload(spec)
    print(f"=== baseline: {spec.display_name} ===")
    print(f"wall time : {units.format_duration(baseline.summary.wall_us)}")
    print(f"TPU idle  : {baseline.idle_fraction:.1%}")
    print(f"MXU util  : {baseline.mxu_utilization:.1%}")

    # The optimizer owns the training loop: detection -> tuning -> remainder.
    estimator = build_estimator(spec)
    result = TPUPoint(estimator).optimize()
    speedup = baseline.summary.wall_us / result.summary.wall_us

    print("\n=== optimized run ===")
    print(f"wall time : {units.format_duration(result.summary.wall_us)}")
    print(f"TPU idle  : {result.summary.tpu_idle_fraction:.1%}")
    print(f"MXU util  : {result.summary.mxu_utilization:.1%}")
    print(f"speedup   : {speedup:.3f}x")
    print(f"critical phase detected at step: {result.detector_triggered_at_step}")
    print(f"adjustable parameters: {result.instrumentation.parameter_names}")

    if result.tuning is not None:
        print(f"\n=== tuning log ({result.tuning.steps_consumed} steps consumed) ===")
        for trial in result.tuning.trials:
            marker = "ACCEPT" if trial.accepted else "      "
            print(
                f"  {marker} {trial.parameter:24s} = {str(trial.value):6s} "
                f"-> {trial.throughput:8.2f} steps/s"
            )
        print(f"\nbest configuration: {result.tuning.best_config}")
        print(f"measured tuning improvement: {result.tuning.improvement:.3f}x")


if __name__ == "__main__":
    main()
