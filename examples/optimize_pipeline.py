"""Tune a badly written input pipeline, online and offline.

Part 1 reproduces the Section VII study: a "naive" implementation
(single-threaded decode, no prefetching, one storage stream) leaves the
TPU mostly idle; TPUPoint-Optimizer detects the performance-critical
phase online, hill-climbs the adjustable parameters while checking
output quality, and finishes the run with the improved configuration.

Part 2 runs the offline autotune engine (the `tpupoint tune` entry
point) twice against a knowledge base: the first search runs cold and
records its best configuration keyed by the workload's phase signature;
the second warm-starts from that entry and measures the known-best
configuration on its very first trial. See docs/tuning.md.

Run:
    python examples/optimize_pipeline.py [workload] [generation]
Defaults: naive-dcgan-mnist on TPUv2.
"""

import dataclasses
import sys
import tempfile

from repro import TPUPoint, WorkloadSpec, build_estimator, run_workload
from repro import units
from repro.core.optimizer import AutotuneOptions, TuningKnowledgeBase, autotune
from repro.host.pipeline import PipelineConfig


def online_optimize(spec: WorkloadSpec) -> None:
    """Section VII: one live run, tuned mid-flight."""
    baseline = run_workload(spec)
    print(f"=== baseline: {spec.display_name} ===")
    print(f"wall time : {units.format_duration(baseline.summary.wall_us)}")
    print(f"TPU idle  : {baseline.idle_fraction:.1%}")
    print(f"MXU util  : {baseline.mxu_utilization:.1%}")

    # The optimizer owns the training loop: detection -> tuning -> remainder.
    estimator = build_estimator(spec)
    result = TPUPoint(estimator).optimize()
    speedup = baseline.summary.wall_us / result.summary.wall_us

    print("\n=== optimized run (online) ===")
    print(f"wall time : {units.format_duration(result.summary.wall_us)}")
    print(f"TPU idle  : {result.summary.tpu_idle_fraction:.1%}")
    print(f"MXU util  : {result.summary.mxu_utilization:.1%}")
    print(f"speedup   : {speedup:.3f}x")
    print(f"critical phase detected at step: {result.detector_triggered_at_step}")

    if result.tuning is not None:
        print(f"\n=== tuning log ({result.tuning.steps_consumed} steps consumed) ===")
        for trial in result.tuning.trials:
            marker = "ACCEPT" if trial.accepted else "      "
            print(
                f"  {marker} {trial.parameter:24s} = {str(trial.value):6s} "
                f"-> {trial.throughput:8.2f} steps/s"
            )
        print(f"\nbest configuration: {result.tuning.best_config}")
        print(f"measured tuning improvement: {result.tuning.improvement:.3f}x")


def offline_autotune(spec: WorkloadSpec) -> None:
    """The `tpupoint tune` flow: strategy search + warm-start knowledge."""

    def factory(config: PipelineConfig):
        return build_estimator(dataclasses.replace(spec, pipeline_config=config))

    probe = build_estimator(spec)
    initial = probe.pipeline_config or PipelineConfig()
    options = AutotuneOptions(strategy="racing", workload=spec.key)

    with tempfile.TemporaryDirectory() as knowledge_dir:
        for label in ("cold", "warm"):
            knowledge = TuningKnowledgeBase.open(knowledge_dir)
            result = autotune(factory, initial, options, knowledge=knowledge)
            outcome = result.outcome
            print(f"\n=== offline autotune, {label} run (racing) ===")
            print(f"warm start : {'yes' if result.warm_started else 'no'}")
            print(f"trials     : {len(outcome.trials)} "
                  f"({units.format_duration(result.simulated_us)} simulated)")
            print(f"best       : {outcome.best_throughput:.2f} steps/s "
                  f"({outcome.improvement:.3f}x, "
                  f"found at trial {outcome.trials_to_best})")
            print(f"best config: {outcome.best_config}")


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "naive-dcgan-mnist"
    generation = sys.argv[2] if len(sys.argv) > 2 else "v2"
    spec = WorkloadSpec(key, generation=generation)
    online_optimize(spec)
    offline_autotune(spec)


if __name__ == "__main__":
    main()
