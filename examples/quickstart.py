"""Quickstart: profile a workload and detect its phases.

This is the paper's Figure 2 flow end-to-end: build a TPUEstimator for a
registered workload, attach TPUPoint, train, and run the post-execution
analyzer. The chrome://tracing visualization is written next to this
script (open chrome://tracing or https://ui.perfetto.dev and load it).

Run:
    python examples/quickstart.py
"""

from pathlib import Path

from repro import TPUPoint, WorkloadSpec, build_estimator
from repro import units
from repro.core.analyzer import associate_checkpoints
from repro.runtime.events import DeviceKind


def main() -> None:
    # 1. Assemble the workload: BERT fine-tuning on MRPC, on a TPUv2.
    estimator = build_estimator(WorkloadSpec("bert-mrpc", generation="v2"))

    # 2. The Figure 2 interface: Start -> train -> Stop.
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    summary = estimator.train()
    tpupoint.Stop()

    print("=== run summary ===")
    print(f"simulated wall time : {units.format_duration(summary.wall_us)}")
    print(f"TPU idle time       : {summary.tpu_idle_fraction:.1%}")
    print(f"MXU utilization     : {summary.mxu_utilization:.1%}")
    print(f"profile records     : {len(tpupoint.records)}")

    # 3. Post-execution analysis: OLS at the default 70% threshold.
    analyzer = tpupoint.analyzer()
    result = analyzer.ols_phases()
    coverage = result.coverage()
    print(f"\n=== phases (OLS @ 70%) ===")
    print(f"phases detected     : {result.num_phases}")
    print(f"top-3 coverage      : {coverage.top(3):.1%}")
    for rank, phase in enumerate(result.phases):
        tpu_ops = ", ".join(s.name for s in phase.top_operators(5, DeviceKind.TPU))
        print(
            f"  #{rank}: {phase.num_steps:4d} steps, "
            f"{units.format_duration(phase.total_duration_us):>10s}  top TPU ops: {tpu_ops}"
        )

    # 4. Checkpoint association: where could each phase fast-forward from?
    associations = associate_checkpoints(
        result.phases, estimator.checkpoint_store, analyzer.steps
    )
    print("\n=== nearest checkpoints ===")
    for phase_id, assoc in sorted(associations.items()):
        print(
            f"  phase {phase_id}: model.ckpt-{assoc.checkpoint.step} "
            f"(distance {assoc.distance_steps} steps)"
        )

    # 5. Export the visualization + CSVs.
    out_dir = Path(__file__).parent / "out"
    paths = analyzer.export(out_dir, result)
    print("\n=== exports ===")
    for kind, path in paths.items():
        print(f"  {kind}: {path}")


if __name__ == "__main__":
    main()
