"""Bring your own workload: define a model + dataset and profile it.

The library is not limited to the paper's Table I workloads. Any
subclass of WorkloadModel — a per-step graph, pipeline stages, and
defaults — plugs into the same estimator/profiler/analyzer/optimizer
machinery. This example defines a small MLP-on-tabular-data workload,
characterizes it, and tunes its pipeline.

Run:
    python examples/custom_workload.py
"""

from dataclasses import dataclass

from repro import TPUPoint, units
from repro.datasets.base import DatasetKind, DatasetSpec
from repro.graph import ops as opdefs
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.models import layers
from repro.models.base import WorkloadDefaults, WorkloadModel, apply_mxu_efficiency
from repro.runtime.events import DeviceKind

TABULAR = DatasetSpec(
    name="ClickLogs",
    kind=DatasetKind.TEXT,
    total_bytes=units.gib(2.0),
    num_examples=5_000_000,
    example_shape=(256,),
    device_bytes_per_example=256 * 4,
    decode_cpu_us=12.0,
    preprocess_cpu_us=25.0,
)


@dataclass
class MlpModel(WorkloadModel):
    """A four-layer MLP recommender tower."""

    hidden: int = 1024
    depth: int = 4

    name: str = "MLP"
    workload_type: str = "Recommendation"

    def build_train_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        b = GraphBuilder(f"mlp-train-b{batch_size}")
        x = b.infeed(
            # Feature vector per example.
            layers.TensorShape((batch_size, dataset.example_shape[0]))
        )
        width = dataset.example_shape[0]
        h = x
        for _ in range(self.depth):
            h = layers.dense_layer(b, h, batch_size, width, self.hidden)
            width = self.hidden
        logits = layers.dense_layer(b, h, batch_size, width, 1, activation=None)
        grad = logits
        for _ in range(self.depth):
            grad = layers.dense_backward(b, grad, batch_size, self.hidden, self.hidden)
        weights = self.depth * self.hidden**2
        metrics = layers.loss_and_optimizer(b, grad, float(weights))
        b.outfeed(metrics)
        return apply_mxu_efficiency(b.build(), 0.45)

    def build_eval_graph(self, batch_size: int, dataset: DatasetSpec) -> Graph:
        b = GraphBuilder(f"mlp-eval-b{batch_size}")
        x = b.infeed(layers.TensorShape((batch_size, dataset.example_shape[0])))
        h = layers.dense_layer(b, x, batch_size, dataset.example_shape[0], self.hidden)
        b.outfeed(b.elementwise(opdefs.SUM, h))
        return apply_mxu_efficiency(b.build(), 0.45)

    def defaults(self, dataset: DatasetSpec) -> WorkloadDefaults:
        return WorkloadDefaults(
            batch_size=4096,
            train_steps=200,
            paper_train_steps=200,
            iterations_per_loop=25,
            checkpoint_every=80,
            checkpoint_bytes=25e6,
        )


def main() -> None:
    estimator = MlpModel().build_estimator(TABULAR, generation="v2")
    tpupoint = TPUPoint(estimator)
    tpupoint.Start(analyzer=True)
    summary = estimator.train()
    tpupoint.Stop()

    print("=== custom workload: MLP-ClickLogs on TPUv2 ===")
    print(f"wall time : {units.format_duration(summary.wall_us)}")
    print(f"TPU idle  : {summary.tpu_idle_fraction:.1%}")
    print(f"MXU util  : {summary.mxu_utilization:.1%}")

    result = tpupoint.analyzer().ols_phases()
    print(f"phases    : {result.num_phases} (top-3 coverage "
          f"{result.coverage().top(3):.1%})")
    dominant = result.phases[0]
    print("dominant-phase top TPU ops :",
          ", ".join(s.name for s in dominant.top_operators(5, DeviceKind.TPU)))
    print("dominant-phase top host ops:",
          ", ".join(s.name for s in dominant.top_operators(5, DeviceKind.HOST)))

    # And the optimizer works on it too.
    fresh = MlpModel().build_estimator(TABULAR, generation="v2")
    optimized = TPUPoint(fresh).optimize()
    speedup = summary.wall_us / optimized.summary.wall_us
    print(f"\noptimizer : {speedup:.3f}x vs the default configuration")


if __name__ == "__main__":
    main()
