"""Extension: why the paper stayed on single-TPU instances.

Section V quotes Google's docs: scaling to multiple TPUs "requires
significant tuning and optimization". This bench runs ResNet-ImageNet on
v2 slices of 1-8 chips, twice — once with the zoo-default input pipeline
and once with an aggressively tuned one — and measures scaling
efficiency. Untuned, the shared host pipeline caps throughput around 2-4
chips (idle explodes); tuned, the same slice keeps scaling. That *is*
the required "significant tuning", quantified.
"""

from repro.host.pipeline import PipelineConfig
from repro.models.resnet import ResNetModel
from repro.datasets.registry import IMAGENET
from repro.tpu.slice import scaling_efficiency, tpu_slice

from _harness import emit, once

_CHIP_COUNTS = (1, 2, 4, 8)
_TUNED = PipelineConfig(
    num_parallel_reads=16, num_parallel_calls=64, prefetch_depth=8, infeed_threads=8
)


def _run(chips, config):
    estimator = ResNetModel().build_estimator(
        IMAGENET, generation=tpu_slice("v2", chips), pipeline_config=config
    )
    return estimator.train()


def test_ext_slice_scaling(benchmark):
    once(benchmark, lambda: _run(2, None))

    lines = [
        f"{'chips':>5s} {'config':>8s} {'wall':>9s} {'idle':>7s} {'MXU':>7s} "
        f"{'speedup':>8s} {'efficiency':>11s}"
    ]
    walls = {}
    for label, config in (("default", None), ("tuned", _TUNED)):
        base_wall = None
        for chips in _CHIP_COUNTS:
            summary = _run(chips, config)
            walls[(label, chips)] = summary.wall_us
            if base_wall is None:
                base_wall = summary.wall_us
            speedup = base_wall / summary.wall_us
            efficiency = scaling_efficiency(base_wall, summary.wall_us, chips)
            lines.append(
                f"{chips:>5d} {label:>8s} {summary.wall_us / 1e6:>8.1f}s "
                f"{summary.tpu_idle_fraction:>7.1%} {summary.mxu_utilization:>7.1%} "
                f"{speedup:>7.2f}x {efficiency:>11.1%}"
            )
    lines.append("untuned pipelines stop scaling at the host wall; tuning restores it")
    emit("ext_scaling", "Extension: slice scaling, default vs tuned pipeline", lines)

    # Default pipeline: 8 chips barely beat 4 (host-bound).
    default_gain_4_to_8 = walls[("default", 4)] / walls[("default", 8)]
    assert default_gain_4_to_8 < 1.25
    # Tuned pipeline: scaling at 8 chips is materially better than default.
    eff_default = scaling_efficiency(walls[("default", 1)], walls[("default", 8)], 8)
    eff_tuned = scaling_efficiency(walls[("tuned", 1)], walls[("tuned", 8)], 8)
    assert eff_tuned > eff_default + 0.10
