"""Ablation: elbow method vs SimPoint's BIC for choosing k.

SimPoint selects k with the Bayesian information criterion (taking the
smallest k within 90% of the best normalized score); TPUPoint replaces
it with the elbow heuristic (Section IV-A). This ablation runs both
criteria on the same k-means sweeps and quantifies the divergence: the
BIC keeps paying for the continuous *duration jitter* inside the
training phase and therefore picks larger k than the elbow, which cuts
at the macro phase structure. Crucially, the choice does not matter for
the paper's results — the top-3 coverage under either k is essentially
identical — which is why the cheaper heuristic is a sound substitution.
"""

from repro.core.analyzer.bic import choose_k_bic
from repro.core.analyzer.kmeans import sweep_k

import numpy as np

from _harness import FIGURE_ORDER, cached_profiled, emit, once


def test_ablation_elbow_vs_bic(benchmark):
    _, _, bench_analyzer = cached_profiled("bert-mrpc")
    once(benchmark, lambda: bench_analyzer.choose_k(range(1, 10), criterion="bic"))

    lines = [
        f"{'workload':18s} {'elbow k*':>9s} {'BIC k*':>7s} "
        f"{'cov3@elbow':>11s} {'cov3@BIC':>9s}"
    ]
    coverage_gaps = []
    for key in FIGURE_ORDER:
        _, _, analyzer = cached_profiled(key)
        k_elbow = analyzer.choose_k(range(1, 10), criterion="elbow")
        matrix = analyzer.reduced_matrix()
        results = sweep_k(matrix, range(1, 10), np.random.default_rng(analyzer.seed))
        k_bic = choose_k_bic(matrix, results)
        cov_elbow = analyzer.kmeans_phases(k=k_elbow).coverage().top(3)
        cov_bic = analyzer.kmeans_phases(k=k_bic).coverage().top(3)
        coverage_gaps.append(abs(cov_elbow - cov_bic))
        lines.append(
            f"{key:18s} {k_elbow:>9d} {k_bic:>7d} {cov_elbow:>11.1%} {cov_bic:>9.1%}"
        )
        # BIC keeps modelling duration jitter, so it never under-segments.
        assert k_bic >= k_elbow
    lines.append(
        "BIC over-segments the jittered training phase; coverage is unaffected "
        f"(max gap {max(coverage_gaps):.1%}) — the elbow heuristic is a sound, "
        "cheaper substitute"
    )
    emit("ablation_bic", "Ablation: elbow vs BIC k-selection", lines)

    # What matters for the paper's claims — top-3 coverage — is invariant.
    assert max(coverage_gaps) <= 0.15
