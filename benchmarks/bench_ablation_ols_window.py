"""Ablation: OLS look-back window size.

The paper's OLS keeps only the current step and its predecessor
(Equation 1 compares step i-1 with step i-2). This ablation widens the
look-back to the union of the last w steps' event sets and exposes an
interaction with Equation 1's min() denominator: with w=1, a step that
merely *adds* operators hides behind the subset rule (the smaller
previous set is fully contained, similarity = 1), while a wider union is
usually the larger set, so strictly-new operators become visible and the
phase count at exact-match thresholds rises. At the paper's 70% default
the window size is irrelevant — the minimal two-step state is exactly
enough, which is why OLS can run online in O(1) memory.
"""

from collections import deque

from repro.core.analyzer.ols import step_similarity

from _harness import cached_profiled, emit, once

_WINDOWS = (1, 2, 4, 8)
_THRESHOLDS = (0.7, 0.95, 1.0)


def _windowed_phase_count(steps, threshold, window):
    history: deque = deque(maxlen=window)
    phases = 1
    for step in steps:
        events = step.event_set
        if history:
            reference = frozenset().union(*history)
            if step_similarity(events, reference) < threshold:
                phases += 1
        history.append(events)
    return phases


def test_ablation_ols_window(benchmark):
    _, _, analyzer = cached_profiled("resnet-imagenet")
    steps = analyzer.steps
    once(benchmark, lambda: _windowed_phase_count(steps, 0.7, 1))

    lines = [f"{'threshold':>9s} " + " ".join(f"w={w:<3d}" for w in _WINDOWS)]
    table = {}
    for threshold in _THRESHOLDS:
        counts = [_windowed_phase_count(steps, threshold, w) for w in _WINDOWS]
        table[threshold] = counts
        lines.append(f"{threshold:>9.0%} " + " ".join(f"{c:>5d}" for c in counts))
    lines.append(
        "wider windows defeat Equation 1's subset rule: strictly-new operators"
    )
    lines.append("become visible, so counts rise at exact-match thresholds")
    emit("ablation_ols_window", "Ablation: OLS look-back window (resnet-imagenet)", lines)

    # At the 70% default the window size does not matter (same few phases) —
    # the paper's minimal w=1 state is sufficient.
    assert len(set(table[0.7])) == 1
    # At exact-match thresholds a wider union exposes new operators that
    # the w=1 subset rule hides, so counts do not fall.
    strict = table[1.0]
    assert strict[1] >= strict[0]
    assert strict[0] > table[0.7][0]
