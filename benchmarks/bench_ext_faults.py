"""Extension: retry overhead of the resilient profile client.

The resilient client (docs/robustness.md) absorbs profile-boundary
faults with capped-exponential retries instead of losing windows. This
bench profiles the same workload under seeded error plans at 0%, 5%,
and 20% failure rates and reports the toolchain wall-time overhead each
rate adds over the fault-free run, alongside the injected/retried
counts. Because error faults are lossless, every run must produce the
same online phase labels as the baseline — the overhead buys zero
analysis drift.
"""

import time

from repro.core.api import TPUPoint
from repro.core.profiler import ProfilerOptions
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultTarget
from repro.workloads.runner import build_estimator
from repro.workloads.spec import WorkloadSpec

from _harness import emit, once

_WORKLOAD = "dcgan-mnist"
_RATES = (0.0, 0.05, 0.20)
_SEED = 20260805


def _plan_for(rate: float) -> FaultPlan | None:
    if rate == 0.0:
        return None
    spec = FaultSpec(
        kind=FaultKind.ERROR, target=FaultTarget.PROFILE, probability=rate
    )
    return FaultPlan(seed=_SEED, specs=(spec,), client={"max_attempts": 8})


def _profile_under(rate: float) -> tuple[float, dict, list[int]]:
    estimator = build_estimator(WorkloadSpec(_WORKLOAD))
    # A tight cadence gives the coin enough profile requests to land on.
    options = ProfilerOptions(request_interval_ms=50.0, fault_plan=_plan_for(rate))
    tpupoint = TPUPoint(estimator, profiler_options=options)
    start = time.perf_counter()
    tpupoint.Start(analyzer=True)
    estimator.train()
    tpupoint.Stop()
    elapsed = time.perf_counter() - start
    labels = list(tpupoint.analyzer().ols_phases().labels)
    return elapsed, tpupoint.fault_report(), labels


def test_ext_faults_retry_overhead(benchmark):
    results = {}

    def run_all():
        for rate in _RATES:
            results[rate] = _profile_under(rate)

    once(benchmark, run_all)

    baseline_elapsed, _, baseline_labels = results[0.0]
    lines = [f"{'rate':>6s} {'injected':>9s} {'retries':>8s} {'overhead':>9s}"]
    for rate in _RATES:
        elapsed, report, labels = results[rate]
        injected = report.get("profile", {}).get("error", 0)
        retries = (report.get("client") or {}).get("retries", 0)
        overhead = elapsed / baseline_elapsed - 1.0
        lines.append(f"{rate:>6.0%} {injected:>9d} {retries:>8d} {overhead:>+9.1%}")
        # Lossless plans must not change the analysis.
        assert labels == baseline_labels
        # Every injected error is absorbed by exactly one retry.
        assert retries == injected
    emit("ext_faults", "Extension: resilient-client retry overhead", lines)
