"""Figure 8: coverage of execution time by the top three DBSCAN phases.

DBSCAN with 30 minimum samples; unlabeled (noise) samples count as one
more cluster, exactly as the paper treats them, and the top three phases
still dominate execution time.
"""

from _harness import FIGURE_ORDER, cached_profiled, emit, once

_BENCH_KEY = "bert-mrpc"


def test_fig08_top3_coverage_dbscan(benchmark):
    _, _, bench_analyzer = cached_profiled(_BENCH_KEY)
    once(benchmark, lambda: bench_analyzer.dbscan_phases(min_samples=30).coverage())

    lines = [
        f"{'workload':18s} {'phases':>7s} {'noise':>7s} {'phase1':>8s} {'phase2':>8s} "
        f"{'phase3':>8s} {'top-3':>8s}"
    ]
    for key in FIGURE_ORDER:
        _, _, analyzer = cached_profiled(key)
        result = analyzer.dbscan_phases(min_samples=30)
        report = result.coverage()
        fractions = list(report.fractions) + [0.0, 0.0, 0.0]
        lines.append(
            f"{key:18s} {result.num_phases:>7d} {result.params['noise_ratio']:>7.1%} "
            f"{fractions[0]:>8.1%} {fractions[1]:>8.1%} {fractions[2]:>8.1%} "
            f"{report.top(3):>8.1%}"
        )
        assert report.top(3) >= 0.90
    lines.append("paper: top-3 phases (noise counted as a cluster) dominate execution")
    emit("fig08", "Figure 8: top-3 phase coverage, DBSCAN min_samples=30", lines)
