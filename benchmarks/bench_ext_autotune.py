"""Extension: offline autotuning — warm starts pay for themselves.

Three claims, each measured and asserted (docs/tuning.md):

1. **Warm starts converge faster.** A cold racing search on the naive
   DCGAN pipeline finds its best configuration after several trials; a
   second search warm-started from the recorded knowledge-base entry
   measures that same configuration on its *first* trial — strictly
   fewer trials-to-best-known, and less end-to-end simulated time to
   reach it.
2. **Worker count never changes results.** Annealing and racing replay
   the identical trial sequence (keys, configs, measurements) at 1, 2,
   and 4 workers.
3. **The knowledge base round-trips.** The entry recorded by the cold
   search is found again by a fresh ``TuningKnowledgeBase.open`` at
   similarity 1.0.

``--quick`` (the CI smoke guard) runs the same flow on a shorter
detection window and smaller racing population.
"""

import argparse
import dataclasses
import sys
import tempfile

from repro import PipelineConfig, WorkloadSpec, build_estimator
from repro.core.optimizer import AutotuneOptions, TuningKnowledgeBase, autotune

_WORKLOAD = "naive-dcgan-mnist"
_WORKER_WIDTHS = (1, 2, 4)


def _factory(spec: WorkloadSpec):
    return lambda cfg: build_estimator(dataclasses.replace(spec, pipeline_config=cfg))


def _initial_config(spec: WorkloadSpec) -> PipelineConfig:
    probe = build_estimator(spec)
    return probe.pipeline_config or PipelineConfig()


def _trial_time_us(result, upto_trial: int) -> float:
    """Simulated time spent through trial ``upto_trial`` (1-based)."""
    overhead = 40_000.0
    return sum(
        trial.elapsed_us + overhead for trial in result.trials[:upto_trial]
    )


def run_warm_vs_cold(quick: bool) -> list[str]:
    spec = WorkloadSpec(_WORKLOAD)
    factory = _factory(spec)
    initial = _initial_config(spec)
    strategy_options = (
        {"population": 4, "trial_steps": 3} if quick else {"population": 8, "trial_steps": 4}
    )
    options = AutotuneOptions(
        strategy="racing",
        detection_steps=20 if quick else 40,
        workload=spec.key,
    )

    with tempfile.TemporaryDirectory() as knowledge_dir:
        cold_kb = TuningKnowledgeBase.open(knowledge_dir)
        cold = autotune(
            factory, initial, options, knowledge=cold_kb,
            strategy_options=strategy_options,
        )
        assert not cold.warm_started, "first search must run cold"
        assert cold.knowledge_recorded, "cold search must record its result"
        assert cold.improvement > 1.0, (
            f"racing found no improvement over the naive pipeline "
            f"({cold.improvement:.3f}x)"
        )

        # A fresh open must see the recorded entry (claim 3).
        warm_kb = TuningKnowledgeBase.open(knowledge_dir)
        assert len(warm_kb) == 1, f"knowledge base holds {len(warm_kb)} entries"
        warm = autotune(
            factory, initial, options, knowledge=warm_kb,
            strategy_options=strategy_options,
        )

    assert warm.warm_started and not warm.rolled_back, (
        "second search must warm-start from the recorded entry"
    )
    assert warm.warm_similarity == 1.0, (
        f"same workload, same phase: similarity {warm.warm_similarity}"
    )

    cold_best_at = cold.outcome.trials_to_config(cold.best_config)
    warm_best_at = warm.outcome.trials_to_config(cold.best_config)
    assert warm_best_at is not None, (
        "warm search never measured the cold search's best configuration"
    )
    assert warm_best_at < cold_best_at, (
        f"warm start must reach the cold best in strictly fewer trials "
        f"({warm_best_at} vs {cold_best_at})"
    )
    cold_time = _trial_time_us(cold, cold_best_at)
    warm_time = _trial_time_us(warm, warm_best_at)
    assert warm_time < cold_time, (
        "warm start must reach the cold best in less simulated time"
    )

    return [
        f"workload {spec.key}, racing "
        f"(population {strategy_options['population']}, "
        f"trial_steps {strategy_options['trial_steps']})",
        f"  cold: best {cold.outcome.best_throughput:6.2f} steps/s "
        f"({cold.improvement:.3f}x) found at trial {cold_best_at} "
        f"of {len(cold.trials)}, {cold_time / 1e6:.2f} s simulated to best",
        f"  warm: reaches that config at trial {warm_best_at} "
        f"of {len(warm.trials)}, {warm_time / 1e6:.2f} s simulated to it "
        f"(similarity {warm.warm_similarity:.2f})",
        f"  trials-to-best-known: {cold_best_at} cold -> {warm_best_at} warm; "
        f"simulated time to it: {cold_time / warm_time:.1f}x less",
    ]


def run_determinism(quick: bool) -> list[str]:
    spec = WorkloadSpec(_WORKLOAD)
    factory = _factory(spec)
    initial = _initial_config(spec)
    matrix = {
        "annealing": {"rounds": 2 if quick else 4, "batch": 3, "trial_steps": 3},
        "racing": {"population": 4, "trial_steps": 3},
    }
    lines = ["worker-count invariance (trial keys, configs, measurements)"]
    for strategy, strategy_options in matrix.items():
        observed = []
        for workers in _WORKER_WIDTHS:
            options = AutotuneOptions(
                strategy=strategy, workers=workers, detection_steps=20
            )
            result = autotune(
                factory, initial, options, strategy_options=strategy_options
            )
            observed.append(
                [(t.key, t.config, t.steps, t.elapsed_us) for t in result.trials]
            )
        assert observed[0] == observed[1] == observed[2], (
            f"{strategy} trials differ across worker counts"
        )
        lines.append(
            f"  {strategy:10s}: workers {_WORKER_WIDTHS} -> "
            f"{len(observed[0])} identical trials"
        )
    return lines


def run_quick() -> list[str]:
    return run_warm_vs_cold(quick=True) + run_determinism(quick=True)


def run_full() -> list[str]:
    return run_warm_vs_cold(quick=False) + run_determinism(quick=False)


def test_ext_autotune(benchmark):
    from _harness import emit, once

    lines: list[str] = []

    def run_all():
        lines.extend(run_full())

    once(benchmark, run_all)
    emit(
        "ext_autotune",
        "Extension: offline autotune (warm-started multi-strategy search)",
        lines,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke run for CI (short detection window, small population)",
    )
    args = parser.parse_args(argv)
    title = "Extension: offline autotune (warm-started multi-strategy search)"
    if args.quick:
        lines = run_quick()
        print("\n".join([f"== {title} (quick) =="] + lines))
    else:
        from _harness import emit

        lines = run_full()
        emit("ext_autotune", title, lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
