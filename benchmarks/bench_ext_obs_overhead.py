"""Extension: self-observability overhead on the analyzer path.

The paper budgets TPUPoint's profiler at single-digit-percent overhead
on the workload (Section V); the same discipline has to hold for our own
toolchain spans and metrics. This bench runs the full analyzer pipeline
(merge -> features -> k-means sweep -> phase table) with instrumentation
live and again with tracing disabled, and reports the overhead fraction
the span/metric layer adds. Budget: < 5% on the analyzer path.
"""

from repro import obs
from repro.core.analyzer import TPUPointAnalyzer

from _harness import cached_profiled, emit, once

_K_VALUES = range(1, 9)
_REPEATS = 5


def _analyze_once(records) -> float:
    import time

    analyzer = TPUPointAnalyzer(records)
    start = time.perf_counter()
    analyzer.kmeans_sweep(_K_VALUES)
    analyzer.kmeans_phases(k=4)
    return time.perf_counter() - start


def _best_of(records, repeats: int) -> float:
    return min(_analyze_once(records) for _ in range(repeats))


def test_ext_obs_overhead(benchmark):
    _, _, analyzer = cached_profiled("bert-mrpc")
    records = analyzer.records

    instrumented = once(benchmark, lambda: _best_of(records, _REPEATS))
    previous = obs.set_tracing_enabled(False)
    try:
        bare = _best_of(records, _REPEATS)
    finally:
        obs.set_tracing_enabled(previous)

    overhead = instrumented / bare - 1.0
    lines = [
        f"{'variant':>14s} {'best-of-' + str(_REPEATS):>12s}",
        f"{'instrumented':>14s} {instrumented * 1e3:>10.2f} ms",
        f"{'bare':>14s} {bare * 1e3:>10.2f} ms",
        f"span+metric overhead on the analyzer path: {overhead:+.2%} (budget < 5%)",
    ]
    emit("ext_obs_overhead", "Extension: self-observability overhead", lines)

    # Generous ceiling: best-of-N keeps scheduler noise down, but CI
    # machines still jitter; the real budget check is the recorded number.
    assert overhead < 0.25
