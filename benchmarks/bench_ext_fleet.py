"""Extension: multi-tenant fleet profiling throughput.

The ROADMAP's production-scale direction: N concurrent training jobs
stream their profile records through one ``repro.serve`` FleetService,
which assembles steps and folds phases online. This bench measures
ingest throughput (records/s and steps/s of real wall time) and prints
the fleet rollup, in two regimes: a healthy fleet with roomy queues, and
an overloaded one (fast profile cadence, tiny queues) where the
drop-oldest backpressure policy must shed load without corrupting any
job's live analysis.
"""

import time

from repro.core.profiler import ProfilerOptions
from repro.serve import FleetServiceOptions, run_fleet

from _harness import emit, once

_FLEET = (
    "bert-mrpc",
    "dcgan-mnist",
    "dcgan-cifar10",
    "bert-cola",
    "dcgan-mnist",
    "bert-mrpc",
)


def _drive(service_options=None, profiler_options=None):
    start = time.perf_counter()
    result = run_fleet(
        _FLEET,
        chunk_steps=16,
        service_options=service_options,
        profiler_options=profiler_options,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_ext_fleet_throughput(benchmark):
    (healthy, healthy_s) = once(benchmark, _drive)
    overloaded, overloaded_s = _drive(
        service_options=FleetServiceOptions(queue_capacity=2),
        profiler_options=ProfilerOptions(request_interval_ms=25.0),
    )

    lines = [
        f"{'regime':>10s} {'jobs':>5s} {'records':>8s} {'dropped':>8s} "
        f"{'steps':>6s} {'rec/s':>9s} {'steps/s':>9s} {'idle':>7s} {'MXU':>7s}"
    ]
    for label, result, elapsed in (
        ("healthy", healthy, healthy_s),
        ("overload", overloaded, overloaded_s),
    ):
        metrics = result.service.metrics
        lines.append(
            f"{label:>10s} {result.rollup.num_jobs:>5d} "
            f"{metrics.records_ingested:>8d} {metrics.records_dropped:>8d} "
            f"{result.rollup.total_steps:>6d} "
            f"{metrics.records_ingested / elapsed:>9.0f} "
            f"{result.rollup.total_steps / elapsed:>9.0f} "
            f"{result.rollup.idle_fraction:>7.1%} "
            f"{result.rollup.mxu_utilization:>7.1%}"
        )
    histogram = ", ".join(
        f"{phases} phases x{count} jobs"
        for phases, count in sorted(healthy.rollup.phase_histogram.items())
    )
    lines.append(f"healthy-fleet phase histogram: {histogram}")
    lines.append("overload sheds oldest records; every job still completes cleanly")
    emit("ext_fleet", "Extension: multi-tenant fleet profiling service", lines)

    # Healthy fleet: nothing shed, everything assembled.
    assert healthy.rollup.completed_jobs == len(_FLEET)
    assert healthy.service.metrics.records_dropped == 0
    assert healthy.rollup.total_steps == sum(
        job.summary.steps_executed for job in healthy.jobs
    )
    # Overloaded fleet: the bounded queues demonstrably shed load, yet
    # every job completes and keeps a consistent live phase table.
    assert overloaded.service.metrics.records_dropped > 0
    assert overloaded.rollup.completed_jobs == len(_FLEET)
    for job in overloaded.jobs:
        assert job.snapshot.num_phases >= 1
