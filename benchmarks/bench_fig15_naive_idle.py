"""Figure 15: TPU idle time of the naive implementations, with and
without TPUPoint-Optimizer, on TPUv2 and TPUv3.

The naive implementations (untuned input pipelines) leave the TPU mostly
idle; the optimizer recovers most of that idle time on both generations.
"""

from _harness import cached_optimized, cached_run, emit, once

_NAIVE = ("naive-qanet-squad", "naive-retinanet-coco")


def test_fig15_naive_idle_time(benchmark):
    once(benchmark, lambda: cached_optimized("naive-qanet-squad", "v2"))

    lines = [
        f"{'workload':24s} {'gen':>4s} {'naive idle':>11s} {'optimized idle':>15s}"
    ]
    for key in _NAIVE:
        for generation in ("v2", "v3"):
            baseline = cached_run(key, generation)
            optimized = cached_optimized(key, generation)
            lines.append(
                f"{key:24s} {generation:>4s} {baseline.idle_fraction:>11.1%} "
                f"{optimized.summary.tpu_idle_fraction:>15.1%}"
            )
            # Shape: the optimizer removes most of the naive idle time.
            assert baseline.idle_fraction > 0.5, key
            assert optimized.summary.tpu_idle_fraction < baseline.idle_fraction - 0.15
    lines.append("paper: optimizer sharply reduces naive-implementation idle time")
    emit("fig15", "Figure 15: naive-implementation idle time +/- optimizer", lines)
