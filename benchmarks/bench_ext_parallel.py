"""Extension: the parallel analyzer engine's shared-work wins.

Three claims, each measured and asserted (docs/performance.md):

1. The DBSCAN min_samples sweep spends exactly ONE distance pass — the
   neighbor graph (and the k-distance eps) are computed in a single
   blocked traversal and every sweep point is a cheap relabeling. The
   baseline (the pre-engine behaviour: one eps pass plus one graph
   build per sweep value) is re-run here for comparison and must be at
   least 3x slower at one worker, with byte-identical labels.
2. The k-means (k x restart) grid fans out over the deterministic
   worker pool with bit-identical labels and inertia at every width.
   On multi-core hosts the wall-time falls with width; this bench
   asserts only the identity and reports the measured scaling.
3. The memo cache turns a repeated sweep into a table lookup.

``--quick`` (the CI perf-smoke guard) runs a smaller matrix and only
the correctness assertions — most importantly that the sweep's
distance-pass counter reads exactly 1.
"""

import argparse
import sys
import time

import numpy as np

from repro.core.analyzer.dbscan import (
    MIN_SAMPLES_SWEEP,
    dbscan,
    default_eps,
    sweep_min_samples,
)
from repro.core.analyzer.distance import distance_passes, reset_pass_counter
from repro.core.analyzer.kmeans import sweep_k
from repro.parallel import WorkerPool

_SEED = 20260805
_WORKER_WIDTHS = (1, 2, 4, 8)
_FULL_STEPS, _FULL_DIMS = 700, 12
_QUICK_STEPS, _QUICK_DIMS = 160, 6


def _step_matrix(n: int, dims: int) -> np.ndarray:
    """Synthetic PCA-reduced step vectors shaped like a profiled run.

    A dominant dense blob (train steps), a smaller offset blob (eval),
    and diffuse outliers (checkpoint/setup) — the structure both
    clustering methods see in real Table I runs.
    """
    rng = np.random.default_rng(_SEED)
    train = rng.normal(0.0, 0.6, size=(int(n * 0.8), dims))
    evals = rng.normal(4.0, 0.9, size=(int(n * 0.15), dims))
    rest = rng.normal(-5.0, 2.0, size=(n - len(train) - len(evals), dims))
    return np.concatenate([train, evals, rest])


def _dbscan_baseline(matrix: np.ndarray, values: list[int]) -> dict:
    """The pre-engine sweep: eps once, then one graph build per value."""
    eps = default_eps(matrix)
    return {ms: dbscan(matrix, eps, ms) for ms in values}


def run_dbscan_comparison(matrix: np.ndarray, min_speedup: float | None) -> list[str]:
    values = list(MIN_SAMPLES_SWEEP)

    reset_pass_counter()
    began = time.perf_counter()
    baseline = _dbscan_baseline(matrix, values)
    baseline_seconds = time.perf_counter() - began
    baseline_passes = distance_passes()

    reset_pass_counter()
    began = time.perf_counter()
    shared = sweep_min_samples(matrix, values)
    shared_seconds = time.perf_counter() - began
    shared_passes = distance_passes()

    assert shared_passes == 1, (
        f"DBSCAN sweep spent {shared_passes} distance passes; the shared "
        f"neighbor graph must cost exactly one"
    )
    for ms in values:
        assert np.array_equal(baseline[ms].labels, shared[ms].labels), (
            f"shared-graph labels diverge from per-call labels at "
            f"min_samples={ms}"
        )
    speedup = baseline_seconds / shared_seconds
    if min_speedup is not None:
        assert speedup >= min_speedup, (
            f"shared-graph sweep is only {speedup:.2f}x faster than the "
            f"per-value baseline (need >= {min_speedup}x)"
        )
    return [
        f"dbscan sweep ({len(values)} min_samples values, "
        f"{matrix.shape[0]} steps x {matrix.shape[1]} dims)",
        f"  baseline (graph per value): {baseline_seconds * 1e3:8.1f} ms, "
        f"{baseline_passes} distance passes",
        f"  shared neighbor graph     : {shared_seconds * 1e3:8.1f} ms, "
        f"{shared_passes} distance pass",
        f"  speedup at 1 worker       : {speedup:8.2f}x  (labels identical)",
    ]


def run_kmeans_scaling(matrix: np.ndarray) -> list[str]:
    k_values = range(1, 9)
    reference = None
    lines = [f"kmeans sweep (k = 1..8, 4 restarts each, seed {_SEED % 100})"]
    serial_seconds = None
    for width in _WORKER_WIDTHS:
        with WorkerPool(width) as pool:
            began = time.perf_counter()
            results = sweep_k(matrix, k_values, seed=_SEED % 100, pool=pool)
            elapsed = time.perf_counter() - began
        if reference is None:
            reference = results
            serial_seconds = elapsed
        else:
            for k in reference:
                assert np.array_equal(reference[k].labels, results[k].labels)
                assert reference[k].inertia == results[k].inertia
        lines.append(
            f"  workers={width}: {elapsed * 1e3:8.1f} ms  "
            f"(x{serial_seconds / elapsed:4.2f} vs serial, results identical)"
        )
    return lines


def run_cache_comparison(matrix: np.ndarray) -> list[str]:
    from repro.core.analyzer.cache import AnalysisCache, matrix_key

    cache = AnalysisCache()
    key = matrix_key(matrix, "kmeans_sweep", seed=_SEED % 100, k_values=list(range(1, 9)))

    began = time.perf_counter()
    cold = {k: r.inertia for k, r in sweep_k(matrix, range(1, 9), seed=_SEED % 100).items()}
    cold_seconds = time.perf_counter() - began
    cache.put_table(key, {str(k): v for k, v in cold.items()})

    began = time.perf_counter()
    warm = cache.get_table(key)
    warm_seconds = time.perf_counter() - began
    assert {int(k): v for k, v in warm.items()} == cold
    return [
        "memo cache (kmeans sweep table)",
        f"  cold sweep : {cold_seconds * 1e3:8.1f} ms",
        f"  cache hit  : {warm_seconds * 1e3:8.3f} ms "
        f"(x{cold_seconds / max(warm_seconds, 1e-9):.0f})",
    ]


def run_quick() -> list[str]:
    """The CI perf-smoke guard: correctness only, small matrix."""
    matrix = _step_matrix(_QUICK_STEPS, _QUICK_DIMS)
    lines = run_dbscan_comparison(matrix, min_speedup=None)

    with WorkerPool(2) as pool:
        parallel = sweep_k(matrix, range(1, 5), seed=_SEED % 100, pool=pool)
    serial = sweep_k(matrix, range(1, 5), seed=_SEED % 100)
    for k in serial:
        assert np.array_equal(serial[k].labels, parallel[k].labels)
        assert serial[k].inertia == parallel[k].inertia
    lines.append("kmeans workers=2 identical to serial: ok")
    lines.append("perf-smoke: distance-pass guard holds (sweep == 1 pass)")
    return lines


def run_full() -> list[str]:
    matrix = _step_matrix(_FULL_STEPS, _FULL_DIMS)
    lines = run_dbscan_comparison(matrix, min_speedup=3.0)
    lines += run_kmeans_scaling(matrix)
    lines += run_cache_comparison(matrix)
    return lines


def test_ext_parallel_engine(benchmark):
    from _harness import emit, once

    lines: list[str] = []

    def run_all():
        lines.extend(run_full())

    once(benchmark, run_all)
    emit(
        "ext_parallel",
        "Extension: parallel analyzer engine (shared kernels + worker pool)",
        lines,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="correctness-only smoke run (the CI distance-pass guard)",
    )
    args = parser.parse_args(argv)
    title = "Extension: parallel analyzer engine (shared kernels + worker pool)"
    if args.quick:
        lines = run_quick()
        print("\n".join([f"== {title} (quick) =="] + lines))
    else:
        from _harness import emit

        lines = run_full()
        emit("ext_parallel", title, lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
