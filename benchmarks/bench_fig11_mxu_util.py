"""Figure 11: MXU utilization for TPUv2 and TPUv3 across workloads.

Paper averages: 22.72% on TPUv2 falling to 11.34% on TPUv3 — the faster
generation is proportionally harder to keep busy.
"""

from _harness import FIGURE_ORDER, cached_run, emit, once


def test_fig11_mxu_utilization(benchmark):
    once(benchmark, lambda: cached_run("bert-mrpc", "v2"))

    lines = [f"{'workload':18s} {'TPUv2':>8s} {'TPUv3':>8s}"]
    totals = {"v2": 0.0, "v3": 0.0}
    for key in FIGURE_ORDER:
        row = {}
        for generation in ("v2", "v3"):
            run = cached_run(key, generation)
            row[generation] = run.mxu_utilization
            totals[generation] += run.mxu_utilization
        lines.append(f"{key:18s} {row['v2']:>8.1%} {row['v3']:>8.1%}")
        assert row["v3"] < row["v2"], key
    mean_v2 = totals["v2"] / len(FIGURE_ORDER)
    mean_v3 = totals["v3"] / len(FIGURE_ORDER)
    lines.append(f"{'average':18s} {mean_v2:>8.1%} {mean_v3:>8.1%}")
    lines.append("paper averages:     22.7%    11.3%")
    emit("fig11", "Figure 11: MXU utilization, TPUv2 vs TPUv3", lines)

    assert 0.15 <= mean_v2 <= 0.32
    assert 0.07 <= mean_v3 <= 0.20
    # Roughly halves from v2 to v3.
    assert mean_v3 < 0.75 * mean_v2

    # Workload ordering the paper reports: detection/classification are
    # the best utilizers, DCGAN the worst, QANet ~low-teens on v2.
    v2 = {key: cached_run(key, "v2").mxu_utilization for key in FIGURE_ORDER}
    assert v2["retinanet-coco"] > 0.30
    assert v2["resnet-imagenet"] > 0.30
    assert v2["dcgan-cifar10"] < 0.12
    assert 0.04 <= v2["qanet-squad"] <= 0.20
