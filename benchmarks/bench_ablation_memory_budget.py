"""Ablation: analyzer memory budgets — why OLS exists.

The paper observes that k-means and DBSCAN "reach memory limitations for
larger workloads such as RetinaNet and ResNet", while OLS — holding only
two steps of state — never does. This ablation sweeps an explicit memory
budget over the analyzer and records the point at which each algorithm
stops being feasible.
"""

import pytest

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.analyzer.analyzer import AnalyzerMemoryError

from _harness import cached_profiled, emit, once

_BUDGETS_MB = (0.05, 0.5, 2.0, 8.0, None)


def _feasible(analyzer, method):
    try:
        if method == "kmeans":
            analyzer.kmeans_phases(k=5)
        elif method == "dbscan":
            analyzer.dbscan_phases(min_samples=30)
        else:
            analyzer.ols_phases(0.70)
        return True
    except AnalyzerMemoryError:
        return False


def test_ablation_memory_budget(benchmark):
    _, _, base = cached_profiled("resnet-imagenet")
    records = base.records
    once(benchmark, lambda: TPUPointAnalyzer(records).ols_phases(0.70))

    lines = [f"{'budget':>10s} {'kmeans':>7s} {'dbscan':>7s} {'ols':>5s}"]
    feasibility = {}
    for budget_mb in _BUDGETS_MB:
        budget = None if budget_mb is None else budget_mb * 1024 * 1024
        analyzer = TPUPointAnalyzer(records, memory_budget_bytes=budget)
        row = {m: _feasible(analyzer, m) for m in ("kmeans", "dbscan", "ols")}
        feasibility[budget_mb] = row
        label = "unlimited" if budget_mb is None else f"{budget_mb:g} MB"
        lines.append(
            f"{label:>10s} {str(row['kmeans']):>7s} {str(row['dbscan']):>7s} "
            f"{str(row['ols']):>5s}"
        )
    lines.append("paper: clustering hits memory limits on large workloads; OLS never does")
    emit("ablation_memory", "Ablation: analyzer memory budgets (resnet-imagenet)", lines)

    # OLS is feasible at every budget; clustering fails under tight ones.
    assert all(row["ols"] for row in feasibility.values())
    assert not feasibility[0.05]["kmeans"]
    assert not feasibility[0.05]["dbscan"]
    assert feasibility[None]["kmeans"] and feasibility[None]["dbscan"]
    # DBSCAN (quadratic distance matrix) fails before k-means does.
    dbscan_only_fail = [
        mb
        for mb, row in feasibility.items()
        if mb is not None and row["kmeans"] and not row["dbscan"]
    ]
    assert dbscan_only_fail, feasibility
