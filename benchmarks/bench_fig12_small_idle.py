"""Figure 12: TPU idle time with reduced datasets.

QANet and RetinaNet run on half of SQuAD/COCO; ResNet runs on CIFAR-10
instead of ImageNet. All models idle more than with their full datasets,
ResNet most dramatically (Observation 6).
"""

from _harness import cached_run, emit, once

_PAIRS = (
    ("qanet-squad", "qanet-squad-half"),
    ("retinanet-coco", "retinanet-coco-half"),
    ("resnet-imagenet", "resnet-cifar10"),
)


def test_fig12_idle_time_small_datasets(benchmark):
    once(benchmark, lambda: cached_run("resnet-cifar10", "v2"))

    lines = [
        f"{'workload':22s} {'v2 full':>8s} {'v2 small':>9s} {'v3 full':>8s} {'v3 small':>9s}"
    ]
    deltas = {}
    for full_key, small_key in _PAIRS:
        row = {}
        for generation in ("v2", "v3"):
            row[f"{generation}-full"] = cached_run(full_key, generation).idle_fraction
            row[f"{generation}-small"] = cached_run(small_key, generation).idle_fraction
        deltas[small_key] = row["v2-small"] - row["v2-full"]
        lines.append(
            f"{small_key:22s} {row['v2-full']:>8.1%} {row['v2-small']:>9.1%} "
            f"{row['v3-full']:>8.1%} {row['v3-small']:>9.1%}"
        )
        # Shape: reduced datasets increase idle time on both generations.
        assert row["v2-small"] > row["v2-full"], small_key
        assert row["v3-small"] > row["v3-full"], small_key
    lines.append("paper: all models idle more on reduced datasets; ResNet changes most")
    emit("fig12", "Figure 12: idle time with smaller datasets", lines)

    # ResNet-CIFAR10 shows the greatest change.
    assert deltas["resnet-cifar10"] == max(deltas.values())
