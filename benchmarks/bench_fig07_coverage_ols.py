"""Figure 7: coverage of execution time by the top three OLS phases.

At the 70% similarity threshold the three longest phases cover at least
95% of every workload's execution time (Observation 2).
"""

from _harness import FIGURE_ORDER, cached_profiled, emit, once

_BENCH_KEY = "bert-mrpc"


def test_fig07_top3_coverage_ols(benchmark):
    _, _, bench_analyzer = cached_profiled(_BENCH_KEY)
    once(benchmark, lambda: bench_analyzer.ols_phases(0.70).coverage())

    lines = [f"{'workload':18s} {'phase1':>8s} {'phase2':>8s} {'phase3':>8s} {'top-3':>8s}"]
    for key in FIGURE_ORDER:
        _, _, analyzer = cached_profiled(key)
        report = analyzer.ols_phases(0.70).coverage()
        fractions = list(report.fractions) + [0.0, 0.0, 0.0]
        lines.append(
            f"{key:18s} {fractions[0]:>8.1%} {fractions[1]:>8.1%} "
            f"{fractions[2]:>8.1%} {report.top(3):>8.1%}"
        )
        assert report.top(3) >= 0.95  # the paper's floor
    lines.append("paper: top-3 phases cover >=95% (nearly 100%) at the 70% threshold")
    emit("fig07", "Figure 7: top-3 phase coverage, OLS @ 70%", lines)
