"""Extension: SDC injection-path overhead and scrub cost.

The silent-data-corruption layer must be cheap when it is not firing.
This bench drives the device hot loop in three postures, interleaved
with alternating order so machine drift cannot bias one side:

- bare: no injector attached — the production path with SDC disabled
  pays a single branch per step.
- fleet-posture: an armed injector whose plan never fires, exactly what
  ``run_fleet`` attaches under an sdc plan. Fleet injectors corrupt
  without collecting digests, so this is the whole injection-path tax a
  quiet plan imposes; it gets the paper's continuous-profiling budget
  (Section V: single-digit percent; we hold < 2%).
- scrub-posture: a digest-collecting injector, the bookkeeping only
  ``tpupoint scrub`` pays — reported for context, not budgeted.

A real scrub pass is then timed wall-clock per chip next to the
simulated cost the quarantine path charges as ``sdc_scrub`` badput.
"""

import gc
import time

from repro.tpu.device import TpuDevice, TpuOpCategory, TpuOpWork
from repro.tpu.sdc import (
    DEFAULT_SCRUB_STEPS,
    SdcFaultModel,
    SdcInjector,
    SdcSpec,
    run_scrub,
    scrub_cost_us,
)
from repro.tpu.specs import TPU_V2

from _harness import emit, once

_STEPS = 2_000
_REPEATS = 9
_SCRUB_CHIPS = 4
_POSTURES = ("bare", "fleet", "scrub")

#: Armed but inert: the window opens far past the driven steps, so the
#: injector is consulted every step yet never fires.
_INERT_SPECS = (
    SdcSpec(model=SdcFaultModel.BIT_FLIP, every_nth=1, first_step=10 * _STEPS),
)

_SCHEDULE = [
    TpuOpWork("InfeedDequeueTuple", TpuOpCategory.INFEED, num_bytes=1e6),
    TpuOpWork("fusion", TpuOpCategory.COMPUTE, flops=1e12, efficiency=0.5, uses_mxu=True),
    TpuOpWork("fusion.1", TpuOpCategory.COMPUTE, flops=5e11, efficiency=0.4, uses_mxu=True),
    TpuOpWork("Reshape", TpuOpCategory.MEMORY, num_bytes=1e8),
    TpuOpWork("CrossReplicaSum", TpuOpCategory.SYNC, fixed_us=50.0),
    TpuOpWork("OutfeedEnqueueTuple", TpuOpCategory.OUTFEED, num_bytes=1e5),
]


def _drive(posture: str) -> float:
    device = TpuDevice(TPU_V2)
    if posture == "fleet":
        device.attach_sdc(SdcInjector(_INERT_SPECS, 0, "chip-0"))
    elif posture == "scrub":
        device.attach_sdc(SdcInjector(_INERT_SPECS, 0, "chip-0", digests=True))
    gc.collect()
    start = time.perf_counter()
    now = 0.0
    for step in range(1, _STEPS + 1):
        now = device.execute_step(step, _SCHEDULE, start_us=now).end_us
    return time.perf_counter() - start


def _measure():
    runs: dict[str, list[float]] = {posture: [] for posture in _POSTURES}
    for repeat in range(_REPEATS):
        order = _POSTURES if repeat % 2 == 0 else _POSTURES[::-1]
        for posture in order:
            runs[posture].append(_drive(posture))
    scrub_start = time.perf_counter()
    report = run_scrub(_SCRUB_CHIPS)
    scrub_wall = time.perf_counter() - scrub_start
    assert report.suspects() == []
    return tuple(min(runs[posture]) for posture in _POSTURES) + (scrub_wall,)


def test_ext_sdc_overhead(benchmark):
    bare, fleet, scrub, scrub_wall = once(benchmark, _measure)

    fleet_overhead = fleet / bare - 1.0
    scrub_overhead = scrub / bare - 1.0
    per_step_ns = (scrub - bare) / _STEPS * 1e9
    per_chip_ms = scrub_wall / _SCRUB_CHIPS * 1e3
    lines = [
        f"{'posture':>14s} {'best-of-' + str(_REPEATS):>12s}   ({_STEPS} steps, "
        f"{len(_SCHEDULE)} ops/step)",
        f"{'bare':>14s} {bare * 1e3:>10.2f} ms",
        f"{'fleet-armed':>14s} {fleet * 1e3:>10.2f} ms",
        f"{'scrub-digests':>14s} {scrub * 1e3:>10.2f} ms",
        f"injection-path tax with an armed-but-quiet plan: {fleet_overhead:+.2%} "
        f"(budget < 2%)",
        f"digest bookkeeping only the scrubber pays: {scrub_overhead:+.2%} "
        f"({per_step_ns:.0f} ns/step)",
        f"scrub wall-clock: {scrub_wall * 1e3:.2f} ms for {_SCRUB_CHIPS} chips "
        f"({per_chip_ms:.2f} ms/chip, {DEFAULT_SCRUB_STEPS} steps each)",
        f"simulated scrub cost charged on quarantine: "
        f"{scrub_cost_us('v2') / 1e3:.1f} ms of sdc_scrub badput per resident job",
    ]
    emit("ext_sdc", "Extension: SDC injection-path overhead and scrub cost", lines)

    # Generous ceiling: best-of-N suppresses scheduler noise, but CI
    # machines still jitter; the recorded number is the budget check.
    assert fleet_overhead < 0.10
