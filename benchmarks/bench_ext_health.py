"""Extension: fleet health sampling overhead.

The health monitor observes the serving tier once per scheduling round
— serve counter rates, drift distances, SLO burn rates, alert rules.
That is the continuous-profiling posture the paper takes for the
profiler itself (Section V budgets it at single-digit percent), so the
monitor gets the same discipline: this bench drives the same seeded
fleet with and without a :class:`HealthMonitor` attached and reports
the wall-clock overhead sampling adds per round. Budget: < 2% on the
fleet path.
"""

import time

from repro.obs import HealthMonitor
from repro.serve import run_fleet

from _harness import emit, once

_FLEET = ("bert-mrpc", "dcgan-mnist", "dcgan-cifar10", "bert-cola")
_REPEATS = 5


def _drive(monitored: bool) -> tuple[float, int, int]:
    monitor = HealthMonitor() if monitored else None
    start = time.perf_counter()
    result = run_fleet(_FLEET, health=monitor)
    elapsed = time.perf_counter() - start
    samples = monitor.samples if monitor is not None else 0
    return elapsed, result.rounds, samples


def _interleaved(repeats: int):
    """Alternate bare/monitored runs so machine drift between the two
    measurement batches cannot masquerade as sampling overhead."""
    bare_runs, monitored_runs = [], []
    for _ in range(repeats):
        bare_runs.append(_drive(False))
        monitored_runs.append(_drive(True))
    return (
        min(run[0] for run in bare_runs),
        min(monitored_runs, key=lambda run: run[0]),
    )


def test_ext_health_overhead(benchmark):
    bare, (monitored, rounds, samples) = once(
        benchmark, lambda: _interleaved(_REPEATS)
    )

    overhead = monitored / bare - 1.0
    per_sample_us = (monitored - bare) / max(samples, 1) * 1e6
    lines = [
        f"{'variant':>12s} {'best-of-' + str(_REPEATS):>12s}",
        f"{'monitored':>12s} {monitored * 1e3:>10.2f} ms  "
        f"({rounds} rounds, {samples} samples)",
        f"{'bare':>12s} {bare * 1e3:>10.2f} ms",
        f"health sampling overhead on the fleet path: {overhead:+.2%} "
        f"(budget < 2%)",
        f"per-sample cost: {per_sample_us:.0f} us",
    ]
    emit("ext_health", "Extension: fleet health sampling overhead", lines)

    # Generous ceiling: best-of-N suppresses scheduler noise, but CI
    # machines still jitter; the recorded number is the budget check.
    assert overhead < 0.15
