"""Figure 10: TPU idle time for TPUv2 and TPUv3 across workloads.

Paper averages: 38.90% idle on TPUv2 and 43.53% on TPUv3 — idle time
*increases* on the faster generation (Observation 5).
"""

from _harness import FIGURE_ORDER, cached_run, emit, once


def test_fig10_idle_time(benchmark):
    once(benchmark, lambda: cached_run("bert-mrpc", "v2"))

    lines = [f"{'workload':18s} {'TPUv2':>8s} {'TPUv3':>8s}"]
    totals = {"v2": 0.0, "v3": 0.0}
    for key in FIGURE_ORDER:
        row = {}
        for generation in ("v2", "v3"):
            run = cached_run(key, generation)
            row[generation] = run.idle_fraction
            totals[generation] += run.idle_fraction
        lines.append(f"{key:18s} {row['v2']:>8.1%} {row['v3']:>8.1%}")
        # Per-workload shape: v3 idles at least as much as v2.
        assert row["v3"] > row["v2"] - 0.01, key
    mean_v2 = totals["v2"] / len(FIGURE_ORDER)
    mean_v3 = totals["v3"] / len(FIGURE_ORDER)
    lines.append(f"{'average':18s} {mean_v2:>8.1%} {mean_v3:>8.1%}")
    lines.append("paper averages:     38.9%    43.5%")
    emit("fig10", "Figure 10: TPU idle time, TPUv2 vs TPUv3", lines)

    # Averages land in the paper's neighbourhood with the v2 < v3 ordering.
    assert 0.25 <= mean_v2 <= 0.50
    assert 0.30 <= mean_v3 <= 0.55
    assert mean_v3 > mean_v2
