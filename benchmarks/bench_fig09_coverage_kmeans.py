"""Figure 9: coverage of execution time by the top three k-means phases.

Even with k fixed at 5 (more clusters than the elbow suggests), the top
three phases dominate execution time.
"""

from _harness import FIGURE_ORDER, cached_profiled, emit, once

_BENCH_KEY = "bert-mrpc"


def test_fig09_top3_coverage_kmeans(benchmark):
    _, _, bench_analyzer = cached_profiled(_BENCH_KEY)
    once(benchmark, lambda: bench_analyzer.kmeans_phases(k=5).coverage())

    lines = [f"{'workload':18s} {'phase1':>8s} {'phase2':>8s} {'phase3':>8s} {'top-3':>8s}"]
    for key in FIGURE_ORDER:
        _, _, analyzer = cached_profiled(key)
        report = analyzer.kmeans_phases(k=5).coverage()
        fractions = list(report.fractions) + [0.0, 0.0, 0.0]
        lines.append(
            f"{key:18s} {fractions[0]:>8.1%} {fractions[1]:>8.1%} "
            f"{fractions[2]:>8.1%} {report.top(3):>8.1%}"
        )
        assert report.top(3) >= 0.90
    lines.append("paper: with k=5, execution is still dominated by the top 3 clusters")
    emit("fig09", "Figure 9: top-3 phase coverage, k-means k=5", lines)
