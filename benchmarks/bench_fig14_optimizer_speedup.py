"""Figure 14: TPUPoint-Optimizer speedups on TPUv2.

The paper tunes the default parameters of the long-running workloads
(QANet-SQuAD and RetinaNet-COCO, the ones over twenty minutes) and
reports a ~1.12x average speedup; the short workloads (BERT, DCGAN) show
no notable change and can even lose slightly to post-processing.
"""

from repro.models.registry import OPTIMIZER_WORKLOADS

from _harness import cached_optimized, cached_run, emit, once

_SHORT_WORKLOADS = ("bert-mrpc", "dcgan-mnist")


def test_fig14_optimizer_speedups_v2(benchmark):
    once(benchmark, lambda: cached_optimized("qanet-squad", "v2"))

    lines = [f"{'workload':18s} {'baseline':>10s} {'optimized':>10s} {'speedup':>8s}"]
    speedups = {}
    for key in OPTIMIZER_WORKLOADS:
        baseline = cached_run(key, "v2")
        optimized = cached_optimized(key, "v2")
        speedup = baseline.summary.wall_us / optimized.summary.wall_us
        speedups[key] = speedup
        lines.append(
            f"{key:18s} {baseline.wall_seconds:>9.1f}s "
            f"{optimized.summary.wall_us / 1e6:>9.1f}s {speedup:>8.3f}x"
        )
    average = sum(speedups.values()) / len(speedups)
    lines.append(f"{'average':18s} {'':>10s} {'':>10s} {average:>8.3f}x")
    lines.append("paper: ~1.12x average over default parameters on TPUv2")

    for key in _SHORT_WORKLOADS:
        baseline = cached_run(key, "v2")
        optimized = cached_optimized(key, "v2")
        speedup = baseline.summary.wall_us / optimized.summary.wall_us
        lines.append(f"{key:18s} (short; paper: no notable change) {speedup:>8.3f}x")
        assert 0.85 < speedup < 1.10, key
    emit("fig14", "Figure 14: TPUPoint-Optimizer speedups, TPUv2", lines)

    # Long-running workloads gain; the average lands near the paper's 1.12x.
    assert all(speedup > 1.02 for speedup in speedups.values()), speedups
    assert 1.05 <= average <= 1.25, average
