"""Extension: binary record codec + streaming analyzer resource wins.

Three claims, each measured and asserted (docs/performance.md):

1. The binary block journal appends AND recovers at >= 3x the JSONL
   journal's throughput. Throughput is normalized to the *JSONL* byte
   volume of the same records (the payload both formats carry), so the
   binary format cannot win by merely writing fewer bytes — it must
   spend less time per record.
2. The streaming analyzer's peak analysis memory is flat across
   1x/4x/16x run lengths of a phase-structured workload, while the
   batch analyzer's grows linearly with the step count (it must
   materialize the full feature matrix).
3. The streaming analyzer's exact mode produces labels bit-identical
   to the batch k-means pipeline on the same records.

``--quick`` (the CI codec-smoke guard) runs a smaller matrix with the
same assertions.
"""

import argparse
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from _harness import emit
from repro.core.analyzer import TPUPointAnalyzer
from repro.core.analyzer.streaming import StreamingAnalyzer, StreamingConfig
from repro.core.profiler.journal import RecordJournal, recover_journal
from repro.core.profiler.record import OperatorStats, ProfileRecord, StepStats
from repro.runtime.events import DeviceKind, StepKind

_PHASE_OPS = (
    ("MatMul", "fusion", "InfeedDequeueTuple", "Reshape", "Send"),
    ("conv2d", "pool", "softmax", "OutfeedEnqueueTuple", "Recv"),
    ("SaveV2", "MergeV2Checkpoints", "ShardedFilename"),
    ("embed", "gather", "one_hot", "pad"),
)


def _journal_record(index: int, steps: int = 8, ops: int = 12) -> ProfileRecord:
    """A record shaped like a real profile window (dense operator maps)."""
    record = ProfileRecord(
        index=index, window_start_us=index * 1e6, window_end_us=(index + 1) * 1e6
    )
    for s in range(steps):
        number = index * steps + s
        step = StepStats(step=number, kind=StepKind.TRAIN)
        step.start_us = number * 1_000.0
        step.end_us = step.start_us + 950.0
        step.tpu_idle_us = 120.0 + (number % 7)
        step.mxu_flops = 2.5e9 + number
        for o in range(ops):
            name = f"op_{o}_{_PHASE_OPS[o % 4][o % 3]}"
            device = DeviceKind.TPU if o % 3 else DeviceKind.HOST
            step.operators[(name, device.value)] = OperatorStats(
                name=name,
                device=device,
                count=1 + o,
                total_duration_us=10.0 * (o + 1) + number % 5,
            )
        record.steps[number] = step
    return record


def _phased_records(scale: int, phases: int = 4, block: int = 40):
    """Phase-contiguous stream: one step signature per phase."""
    records = []
    number = 0
    for phase in range(phases):
        record = ProfileRecord(
            index=len(records), window_start_us=0.0, window_end_us=1.0
        )
        for _ in range(block * scale):
            step = StepStats(step=number, kind=StepKind.TRAIN)
            step.start_us = number * 100.0
            step.end_us = step.start_us + 95.0
            step.tpu_idle_us = 11.0
            step.mxu_flops = 1e9
            for position, name in enumerate(_PHASE_OPS[phase]):
                step.operators[(name, DeviceKind.TPU.value)] = OperatorStats(
                    name=name,
                    device=DeviceKind.TPU,
                    count=2 + position,
                    total_duration_us=20.0 * (position + 1),
                )
            record.steps[number] = step
            number += 1
            if len(record.steps) == 32:
                records.append(record)
                record = ProfileRecord(
                    index=len(records), window_start_us=0.0, window_end_us=1.0
                )
        if record.steps:
            records.append(record)
    return records


def _journal_round_trip(directory: Path, records, format: str, repeats: int = 3):
    """Best-of-``repeats`` (append_seconds, recover_seconds, bytes_on_disk)."""
    append_seconds = recover_seconds = float("inf")
    path = directory / f"bench.{format}"
    for _ in range(repeats):
        path.unlink(missing_ok=True)
        journal = RecordJournal(path, format=format)
        began = time.perf_counter()
        for record in records:
            journal.append(record)
        append_seconds = min(append_seconds, time.perf_counter() - began)
        journal.close()
        began = time.perf_counter()
        recovery = recover_journal(path)
        recover_seconds = min(recover_seconds, time.perf_counter() - began)
        assert recovery.lossless and len(recovery.records) == len(records)
    return append_seconds, recover_seconds, path.stat().st_size


def run_journal_comparison(records, directory: Path, min_speedup: float) -> list[str]:
    json_append, json_recover, json_bytes = _journal_round_trip(
        directory, records, "json"
    )
    bin_append, bin_recover, bin_bytes = _journal_round_trip(
        directory, records, "binary"
    )
    mb = json_bytes / 1e6  # both throughputs normalized to the JSONL volume
    append_speedup = json_append / bin_append
    recover_speedup = json_recover / bin_recover
    lines = [
        f"records          : {len(records)} "
        f"({json_bytes} JSONL bytes, {bin_bytes} binary bytes)",
        f"append           : jsonl {mb / json_append:8.1f} MB/s   "
        f"binary {mb / bin_append:8.1f} MB/s   ({append_speedup:.1f}x)",
        f"recover          : jsonl {mb / json_recover:8.1f} MB/s   "
        f"binary {mb / bin_recover:8.1f} MB/s   ({recover_speedup:.1f}x)",
    ]
    assert append_speedup >= min_speedup, (
        f"binary append is only {append_speedup:.1f}x JSONL "
        f"(required >= {min_speedup}x)"
    )
    assert recover_speedup >= min_speedup, (
        f"binary recover is only {recover_speedup:.1f}x JSONL "
        f"(required >= {min_speedup}x)"
    )
    return lines


def _batch_peak(records) -> int:
    tracemalloc.start()
    TPUPointAnalyzer(records).kmeans_phases()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _streaming_peak(records) -> tuple[int, int]:
    """(tracemalloc peak, retained state bytes) of a sketch-mode pass."""
    tracemalloc.start()
    analyzer = StreamingAnalyzer(StreamingConfig(mode="sketch"))
    for record in records:
        analyzer.fold_record(record)
    analyzer.finish()
    analyzer.analyze()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, analyzer.state_bytes()


def run_memory_scaling(scales) -> list[str]:
    lines = [
        f"{'scale':>6} {'steps':>7} {'batch peak':>12} "
        f"{'stream peak':>12} {'stream state':>13}"
    ]
    # Warm-up pass: first-call module/cache allocations (~1 MB) would
    # otherwise mask the batch analyzer's growth at the smallest scale.
    warmup = _phased_records(scales[0])
    _batch_peak(warmup)
    _streaming_peak(warmup)
    batch_peaks, stream_peaks = {}, {}
    for scale in scales:
        records = _phased_records(scale)
        steps = sum(len(record.steps) for record in records)
        batch_peaks[scale] = _batch_peak(records)
        stream_peaks[scale], state = _streaming_peak(records)
        lines.append(
            f"{scale:>5}x {steps:>7} {batch_peaks[scale]:>12} "
            f"{stream_peaks[scale]:>12} {state:>13}"
        )
    first, last = scales[0], scales[-1]
    length_ratio = last / first
    batch_growth = batch_peaks[last] / batch_peaks[first]
    stream_growth = stream_peaks[last] / stream_peaks[first]
    lines.append(
        f"peak growth over {length_ratio:.0f}x longer runs: "
        f"batch {batch_growth:.1f}x, streaming {stream_growth:.2f}x"
    )
    assert stream_growth < 2.0, (
        f"streaming peak grew {stream_growth:.1f}x over {length_ratio:.0f}x "
        "longer runs; the state is supposed to be flat"
    )
    assert batch_growth > stream_growth * 2.0, (
        f"batch peak grew only {batch_growth:.1f}x vs streaming "
        f"{stream_growth:.2f}x — the separation collapsed"
    )
    return lines


def run_exactness(scale: int) -> list[str]:
    records = _phased_records(scale)
    batch = TPUPointAnalyzer(records).kmeans_phases()
    streaming = StreamingAnalyzer()
    for record in records:
        streaming.fold_record(record)
    streaming.finish()
    analysis = streaming.analyze()
    assert np.array_equal(analysis.labels, batch.labels), (
        "exact-mode streaming labels diverged from batch"
    )
    return [
        f"exact mode       : labels bit-identical to batch "
        f"(k={analysis.params['k']}, {len(analysis.labels)} steps)"
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out-dir", default=None, help="scratch directory")
    args = parser.parse_args(argv)

    if args.out_dir is None:
        import tempfile

        scratch = tempfile.TemporaryDirectory(prefix="bench_codec_")
        directory = Path(scratch.name)
    else:
        directory = Path(args.out_dir)
        directory.mkdir(parents=True, exist_ok=True)

    num_records = 80 if args.quick else 400
    scales = (1, 4) if args.quick else (1, 4, 16)
    records = [_journal_record(i) for i in range(num_records)]

    lines = run_journal_comparison(records, directory, min_speedup=3.0)
    lines += run_memory_scaling(scales)
    lines += run_exactness(scales[0])
    emit(
        "ext_codec",
        "binary record codec + streaming analyzer"
        + (" (quick)" if args.quick else ""),
        lines,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
