"""Ablation: profile event/duration caps.

The Cloud TPU profile service bounds every response (1M events / 60 s).
This ablation shrinks the caps far below the defaults and shows the
analyzer's results are invariant: smaller windows mean more records, but
the merged per-step statistics — and therefore the detected phases — are
identical. The caps are a transport constraint, not an accuracy one.
"""

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.profiler import ProfilerOptions, TPUPointProfiler
from repro.workloads.runner import build_estimator
from repro.workloads.spec import WorkloadSpec

from _harness import emit, once

_CAPS = (
    ("default", 1_000_000, 60_000.0),
    ("small-events", 200, 60_000.0),
    ("small-window", 1_000_000, 250.0),
    ("tiny", 100, 100.0),
)


def _profile(key, max_events, max_duration_ms):
    estimator = build_estimator(WorkloadSpec(key))
    profiler = TPUPointProfiler(
        estimator,
        ProfilerOptions(
            request_interval_ms=500.0,
            max_events_per_profile=max_events,
            max_profile_duration_ms=max_duration_ms,
            record_to_storage=False,
        ),
    )
    profiler.start(analyzer=True)
    estimator.train()
    return profiler.stop()


def test_ablation_profile_caps(benchmark):
    records = once(benchmark, lambda: _profile("bert-mrpc", 200, 60_000.0))
    assert records

    lines = [f"{'caps':14s} {'records':>8s} {'steps':>6s} {'phases@70':>10s} {'cov3':>7s}"]
    signatures = []
    for name, max_events, max_duration_ms in _CAPS:
        records = _profile("bert-mrpc", max_events, max_duration_ms)
        analyzer = TPUPointAnalyzer(records)
        result = analyzer.ols_phases(0.70)
        signature = (
            len(analyzer.steps),
            result.num_phases,
            round(result.coverage().top(3), 6),
        )
        signatures.append(signature)
        lines.append(
            f"{name:14s} {len(records):>8d} {signature[0]:>6d} "
            f"{signature[1]:>10d} {signature[2]:>7.1%}"
        )
    lines.append("smaller caps => more records, identical merged analysis")
    emit("ablation_profile_caps", "Ablation: profile caps (bert-mrpc)", lines)

    # All cap settings produce the exact same analysis.
    assert len(set(signatures)) == 1, signatures
