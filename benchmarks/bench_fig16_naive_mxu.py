"""Figure 16: MXU utilization of the naive implementations, with and
without TPUPoint-Optimizer, on TPUv2 and TPUv3.

The counterpart of Figure 15: optimization raises matrix-unit
utilization, most pronouncedly on TPUv2.
"""

from _harness import cached_optimized, cached_run, emit, once

_NAIVE = ("naive-qanet-squad", "naive-retinanet-coco")


def test_fig16_naive_mxu_utilization(benchmark):
    once(benchmark, lambda: cached_optimized("naive-qanet-squad", "v2"))

    lines = [
        f"{'workload':24s} {'gen':>4s} {'naive MXU':>10s} {'optimized MXU':>14s}"
    ]
    gains = {"v2": [], "v3": []}
    for key in _NAIVE:
        for generation in ("v2", "v3"):
            baseline = cached_run(key, generation)
            optimized = cached_optimized(key, generation)
            gain = optimized.summary.mxu_utilization - baseline.mxu_utilization
            gains[generation].append(gain)
            lines.append(
                f"{key:24s} {generation:>4s} {baseline.mxu_utilization:>10.1%} "
                f"{optimized.summary.mxu_utilization:>14.1%}"
            )
            assert optimized.summary.mxu_utilization > baseline.mxu_utilization, key
    lines.append("paper: optimizer raises MXU utilization, most pronounced on TPUv2")
    emit("fig16", "Figure 16: naive-implementation MXU utilization +/- optimizer", lines)

    # The absolute gain is larger on v2 than v3 (the paper's "pronounced
    # change" on TPUv2).
    assert sum(gains["v2"]) > sum(gains["v3"])
