"""Figure 4: k-means clustering — SSD to centroids for k = 1..15.

The paper's elbow lands at 4-6 clusters; the series must be (weakly)
decreasing with a pronounced early drop.
"""

import pytest

from repro.core.analyzer.elbow import find_elbow

from _harness import FIGURE_ORDER, cached_profiled, emit, once

# A representative subset keeps the k-sweep bench affordable; the full
# series for all nine workloads is produced by the loop below regardless.
_BENCH_KEY = "bert-mrpc"


def test_fig04_kmeans_ssd_series(benchmark):
    _, _, bench_analyzer = cached_profiled(_BENCH_KEY)
    once(benchmark, lambda: bench_analyzer.kmeans_sweep(range(1, 16)))

    lines = [f"{'workload':18s} " + " ".join(f"k={k:<2d}" for k in range(1, 16)) + "  elbow"]
    elbows = {}
    for key in FIGURE_ORDER:
        _, _, analyzer = cached_profiled(key)
        sweep = analyzer.kmeans_sweep(range(1, 16))
        ks = sorted(sweep)
        ssd = [sweep[k] for k in ks]
        elbow_k = ks[find_elbow([float(k) for k in ks], ssd)]
        elbows[key] = elbow_k
        normalized = [value / max(ssd[0], 1e-12) for value in ssd]
        lines.append(
            f"{key:18s} " + " ".join(f"{v:4.2f}" for v in normalized) + f"  k*={elbow_k}"
        )
        # Shape: essentially non-increasing (k-means++ restarts leave at
        # most small bumps) with a pronounced early drop.
        assert all(b <= a * 1.10 + 1e-6 for a, b in zip(ssd, ssd[1:]))
        assert ssd[5] < ssd[0]
    lines.append("paper: SSD stops improving significantly between k=4 and k=6")
    emit("fig04", "Figure 4: k-means SSD vs k (normalized to k=1)", lines)

    # Elbow in the paper's neighbourhood for the majority of workloads.
    in_range = sum(1 for k in elbows.values() if 2 <= k <= 7)
    assert in_range >= 6, elbows
