"""Extension: sharded fleet ingest throughput at 10k tenants.

One ``FleetService`` drain loop walks every live tenant per global
pump, so pump cost grows with fleet size even when most queues are
empty. The sharded tier (``repro.serve.shard``, docs/fleet.md) bounds
that walk: a full ingest batch pumps only its own shard, so per-pump
scan work is tenants-per-shard — roughly an S-fold reduction at S
shards — while every answer stays bit-identical to the single-service
path.

This bench registers 10,000 synthetic tenants, streams one record
each through ``ShardedFleet`` at 1/2/4/8 shards, and reports:

* ingest+drain throughput (records/s of real wall time), which must
  *increase* with shard count (asserted full-run only — CI boxes are
  too noisy for timing asserts, so ``--quick`` checks identities on a
  smaller fleet instead);
* p50/p99 ``job_snapshot`` latency over a 512-tenant sample;
* the invariant checks: zero shed records, identical fleet totals at
  every shard count, and per-tenant goodput buckets summing to the
  charged total.
"""

import argparse
import sys
import time

from repro.core.profiler.record import ProfileRecord, StepStats
from repro.core.profiler.serialize import record_checksum
from repro.runtime.events import DeviceKind, StepKind
from repro.serve import ShardedFleet, ShardedFleetOptions

_SHARD_COUNTS = (1, 2, 4, 8)
_FULL_TENANTS = 10_000
_QUICK_TENANTS = 1_500
_SNAPSHOT_SAMPLE = 512

_OPS = ("matmul", "fusion", "InfeedDequeueTuple")


def _record_for(tenant: int) -> ProfileRecord:
    """One tiny single-step record, deterministic per tenant."""
    record = ProfileRecord(index=0, window_start_us=0.0, window_end_us=1.0)
    step = StepStats(step=0)
    for name in _OPS:
        step.observe(name, DeviceKind.TPU, 10.0)
    step.kind = StepKind.TRAIN
    step.start_us = 0.0
    step.end_us = 100.0
    step.tpu_idle_us = float(tenant % 50)
    step.mxu_flops = 1e6
    record.steps[0] = step
    return record


def _drive(num_tenants: int, shards: int):
    """Register, ingest, and settle a fleet; returns (fleet, seconds)."""
    fleet = ShardedFleet(ShardedFleetOptions(shards=shards))
    tenants = [f"tenant-{i:05d}" for i in range(num_tenants)]
    for tenant in tenants:
        fleet.register("bert-mrpc", job_id=tenant)
    records = [
        (tenant, _record_for(i)) for i, tenant in enumerate(tenants)
    ]
    checksums = [record_checksum(record) for _, record in records]
    began = time.perf_counter()
    for (tenant, record), checksum in zip(records, checksums):
        fleet.submit(tenant, record, checksum=checksum)
    fleet.pump()
    elapsed = time.perf_counter() - began
    return fleet, tenants, elapsed


def _snapshot_latencies(fleet, tenants) -> tuple[float, float]:
    """(p50, p99) job_snapshot latency in microseconds over a sample."""
    stride = max(len(tenants) // _SNAPSHOT_SAMPLE, 1)
    sample = tenants[::stride][:_SNAPSHOT_SAMPLE]
    timings = []
    for tenant in sample:
        began = time.perf_counter()
        fleet.job_snapshot(tenant)
        timings.append(time.perf_counter() - began)
    timings.sort()
    p50 = timings[len(timings) // 2]
    p99 = timings[min(int(len(timings) * 0.99), len(timings) - 1)]
    return p50 * 1e6, p99 * 1e6


def run_sweep(num_tenants: int, assert_scaling: bool) -> list[str]:
    lines = [
        f"{'shards':>7s} {'tenants':>8s} {'records':>8s} {'dropped':>8s} "
        f"{'rec/s':>10s} {'snap p50':>10s} {'snap p99':>10s}"
    ]
    throughput: dict[int, float] = {}
    reference = None
    for shards in _SHARD_COUNTS:
        fleet, tenants, elapsed = _drive(num_tenants, shards)
        rate = num_tenants / elapsed
        throughput[shards] = rate
        p50_us, p99_us = _snapshot_latencies(fleet, tenants)
        metrics = fleet.metrics
        assert metrics.records_dropped == 0, "sharded path must never shed"
        assert metrics.records_ingested == num_tenants
        snapshot = fleet.fleet_snapshot()
        totals = (
            snapshot.total_steps,
            snapshot.total_records,
            snapshot.total_drops,
            round(snapshot.idle_fraction, 12),
        )
        if reference is None:
            reference = totals
        assert totals == reference, (
            f"fleet totals diverged at {shards} shards: {totals} != {reference}"
        )
        report = fleet.goodput_report()
        for row in report.tenants[:64]:
            assert abs(row.total_us - (row.goodput_us + row.badput_us)) < 1e-6
        lines.append(
            f"{shards:>7d} {num_tenants:>8d} {metrics.records_ingested:>8d} "
            f"{metrics.records_dropped:>8d} {rate:>10.0f} "
            f"{p50_us:>8.1f}us {p99_us:>8.1f}us"
        )
        fleet.close()
    best, base = throughput[max(_SHARD_COUNTS)], throughput[1]
    lines.append(
        f"throughput x{best / base:.2f} at {max(_SHARD_COUNTS)} shards vs 1 "
        f"(per-pump scan is tenants/shard, docs/fleet.md)"
    )
    if assert_scaling:
        assert best > base, (
            f"ingest throughput must rise with shard count at {num_tenants} "
            f"tenants: {base:.0f} rec/s at 1 shard vs {best:.0f} at "
            f"{max(_SHARD_COUNTS)}"
        )
    return lines


def test_ext_shard_scaling(benchmark):
    from _harness import emit, once

    lines: list[str] = []

    def run_all():
        lines.extend(run_sweep(_FULL_TENANTS, assert_scaling=True))

    once(benchmark, run_all)
    emit(
        "ext_shard",
        "Extension: sharded fleet ingest at 10k tenants (1/2/4/8 shards)",
        lines,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-fleet identity checks only (no timing assertions)",
    )
    args = parser.parse_args(argv)
    title = "Extension: sharded fleet ingest at 10k tenants (1/2/4/8 shards)"
    if args.quick:
        lines = run_sweep(_QUICK_TENANTS, assert_scaling=False)
        print("\n".join([f"== {title} (quick) =="] + lines))
    else:
        from _harness import emit

        lines = run_sweep(_FULL_TENANTS, assert_scaling=True)
        emit("ext_shard", title, lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
