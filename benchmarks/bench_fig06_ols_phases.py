"""Figure 6: OLS — number of phases vs similarity threshold 0%..100%.

The paper's shape: ~3 phases at the 70% default for most workloads, with
the count growing sharply toward 100%; RetinaNet-COCO and
ResNet-ImageNet exceed 15 phases at the extreme threshold while the rest
stay below.
"""

from _harness import FIGURE_ORDER, cached_profiled, emit, once

_THRESHOLDS = [round(0.1 * i, 1) for i in range(11)]
_BENCH_KEY = "bert-mrpc"


def test_fig06_ols_threshold_series(benchmark):
    _, _, bench_analyzer = cached_profiled(_BENCH_KEY)
    once(benchmark, lambda: bench_analyzer.ols_sweep(_THRESHOLDS))

    lines = [f"{'workload':18s} " + " ".join(f"{int(t*100):>4d}%" for t in _THRESHOLDS)]
    at_100 = {}
    for key in FIGURE_ORDER:
        _, _, analyzer = cached_profiled(key)
        sweep = analyzer.ols_sweep(_THRESHOLDS)
        counts = [sweep[t] for t in _THRESHOLDS]
        at_100[key] = counts[-1]
        lines.append(f"{key:18s} " + " ".join(f"{c:>5d}" for c in counts))
        # Shape: monotone non-decreasing; one phase at threshold zero.
        assert counts[0] == 1
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        # Observation 1: few phases at the 70% default.
        assert sweep[0.7] <= 6
    lines.append("paper: ~3 phases at 70%; RetinaNet/ResNet exceed 15 at 100%")
    emit("fig06", "Figure 6: OLS phase count vs similarity threshold", lines)

    # The paper's exception clause at the 100% threshold.
    assert at_100["retinanet-coco"] > 15
    assert at_100["resnet-imagenet"] > 15
    small = [k for k in FIGURE_ORDER if k not in ("retinanet-coco", "resnet-imagenet")]
    assert sum(1 for k in small if at_100[k] <= 15) >= 5, at_100
