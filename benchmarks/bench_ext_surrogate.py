"""Extension: the learned performance surrogate pays for its training.

Three claims, each measured and asserted (docs/surrogate.md):

1. **Surrogate-guided tuning spends less.** On the naive DCGAN
   pipeline, a surrogate search seeded from the committed bench corpus
   plus a recorded knowledge-base entry reaches the best-known
   configuration with *fewer total real trials* and *less total
   simulated time* than both the cold racing search and the warm-started
   racing search — and its trials-to-best-known is no worse than the
   warm start's.
2. **Predictions and schedules are bit-identical.** Two surrogate runs
   over the same inputs produce the identical trial sequence and the
   identical serialized model (the ``--surrogate-out`` artifact), and
   the sequence does not change across 1, 2, and 4 workers.
3. **The guard stays in charge.** The surrogate run's winner is
   accepted by the same warm-start guard that protects racing: the
   returned configuration was measured for real, never merely predicted.

``--quick`` (the CI smoke guard) runs the same flow on a shorter
detection window and a smaller population.
"""

import argparse
import dataclasses
import json
import sys
import tempfile
from pathlib import Path

from repro import PipelineConfig, WorkloadSpec, build_estimator
from repro.core.optimizer import AutotuneOptions, TuningKnowledgeBase, autotune

_WORKLOAD = "naive-dcgan-mnist"
_WORKER_WIDTHS = (1, 2, 4)
_CORPUS = Path(__file__).parent / "corpus" / "surrogate_corpus.json"


def _factory(spec: WorkloadSpec):
    return lambda cfg: build_estimator(dataclasses.replace(spec, pipeline_config=cfg))


def _initial_config(spec: WorkloadSpec) -> PipelineConfig:
    probe = build_estimator(spec)
    return probe.pipeline_config or PipelineConfig()


def _options(strategy: str, quick: bool, workers: int = 1) -> AutotuneOptions:
    return AutotuneOptions(
        strategy=strategy,
        workers=workers,
        detection_steps=20 if quick else 40,
        workload=_WORKLOAD,
        surrogate_corpus=str(_CORPUS),
    )


def _strategy_options(quick: bool) -> dict:
    return (
        {"population": 8, "trial_steps": 3}
        if quick
        else {"population": 12, "trial_steps": 4}
    )


def run_trials_to_best(quick: bool) -> list[str]:
    spec = WorkloadSpec(_WORKLOAD)
    factory = _factory(spec)
    initial = _initial_config(spec)
    strategy_options = _strategy_options(quick)

    with tempfile.TemporaryDirectory() as knowledge_dir:
        cold = autotune(
            factory, initial, _options("racing", quick),
            knowledge=TuningKnowledgeBase.open(knowledge_dir),
            strategy_options=strategy_options,
        )
        assert cold.knowledge_recorded, "cold racing must record its result"
        warm = autotune(
            factory, initial, _options("racing", quick),
            knowledge=TuningKnowledgeBase.open(knowledge_dir),
            strategy_options=strategy_options,
        )
        assert warm.warm_started and not warm.rolled_back
        guided = autotune(
            factory, initial, _options("surrogate", quick),
            knowledge=TuningKnowledgeBase.open(knowledge_dir),
            strategy_options=strategy_options,
        )

    assert guided.surrogate is not None and guided.surrogate.ready, (
        "corpus + knowledge base must make the surrogate ready"
    )
    # Claim 1: fewer real trials and less total simulated time than both
    # the cold and the warm-started racing paths.
    assert len(guided.trials) < len(cold.trials), (
        f"guided search must measure fewer real trials than cold racing "
        f"({len(guided.trials)} vs {len(cold.trials)})"
    )
    assert len(guided.trials) < len(warm.trials), (
        f"guided search must measure fewer real trials than warm racing "
        f"({len(guided.trials)} vs {len(warm.trials)})"
    )
    assert guided.simulated_us < cold.simulated_us, (
        "guided search must spend less simulated time than cold racing"
    )
    assert guided.simulated_us < warm.simulated_us, (
        "guided search must spend less simulated time than warm racing"
    )
    # ... while still reaching the best-known configuration, and sooner
    # than the cold search that discovered it.
    best_known = cold.best_config
    reached_at = guided.outcome.trials_to_config(best_known)
    assert reached_at is not None, (
        "guided search never measured the best-known configuration"
    )
    cold_reached_at = cold.outcome.trials_to_config(best_known)
    assert reached_at < cold_reached_at, (
        f"guided search must reach the best-known config in fewer trials "
        f"than the cold search ({reached_at} vs {cold_reached_at})"
    )
    # Claim 3: the guard and the real measurements stay in charge — the
    # returned winner was measured, not merely predicted, and it beats
    # (or matches) every other configuration the run measured for real.
    assert not guided.rolled_back, "the guided winner must survive the guard"
    assert guided.outcome.trials_to_config(guided.best_config) is not None, (
        "the guided winner must come from a real trial"
    )

    document = guided.surrogate.to_document()
    return [
        f"workload {_WORKLOAD}, population "
        f"{strategy_options['population']}, corpus {_CORPUS.name}",
        f"  cold racing : {len(cold.trials):2d} real trials, "
        f"{cold.simulated_us / 1e6:6.2f} s simulated, "
        f"best-known found at trial {cold_reached_at}",
        f"  warm racing : {len(warm.trials):2d} real trials, "
        f"{warm.simulated_us / 1e6:6.2f} s simulated",
        f"  surrogate   : {len(guided.trials):2d} real trials, "
        f"{guided.simulated_us / 1e6:6.2f} s simulated, "
        f"best-known measured at trial {reached_at}",
        f"  model: {document['kind']}, {document['pairs']} training pairs, "
        f"{document['refits']} refits, digest {document['training_digest']}",
    ]


def run_determinism(quick: bool) -> list[str]:
    spec = WorkloadSpec(_WORKLOAD)
    factory = _factory(spec)
    initial = _initial_config(spec)
    strategy_options = _strategy_options(quick)

    # Claim 2a: repeat runs are bit-identical (schedule and model dump).
    dumps = []
    for _ in range(2):
        result = autotune(
            factory, initial, _options("surrogate", quick),
            strategy_options=strategy_options,
        )
        dumps.append(
            (
                [(t.key, t.config, t.steps, t.elapsed_us) for t in result.trials],
                json.dumps(result.surrogate.to_document(), sort_keys=True),
            )
        )
    assert dumps[0] == dumps[1], "surrogate runs differ between repeats"

    # Claim 2b: worker count never changes the schedule.
    observed = []
    for workers in _WORKER_WIDTHS:
        result = autotune(
            factory, initial, _options("surrogate", quick, workers=workers),
            strategy_options=strategy_options,
        )
        observed.append(
            [(t.key, t.config, t.steps, t.elapsed_us) for t in result.trials]
            + [json.dumps(result.surrogate.to_document(), sort_keys=True)]
        )
    assert observed[0] == observed[1] == observed[2], (
        "surrogate trials differ across worker counts"
    )
    return [
        "determinism: 2 repeat runs bit-identical (trials + model dump); "
        f"workers {_WORKER_WIDTHS} -> {len(observed[0]) - 1} identical trials",
    ]


def run_quick() -> list[str]:
    return run_trials_to_best(quick=True) + run_determinism(quick=True)


def run_full() -> list[str]:
    return run_trials_to_best(quick=False) + run_determinism(quick=False)


def test_ext_surrogate(benchmark):
    from _harness import emit, once

    lines: list[str] = []

    def run_all():
        lines.extend(run_full())

    once(benchmark, run_all)
    emit(
        "ext_surrogate",
        "Extension: surrogate-guided autotune (learned performance model)",
        lines,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke run for CI (short detection window, small population)",
    )
    args = parser.parse_args(argv)
    title = "Extension: surrogate-guided autotune (learned performance model)"
    if args.quick:
        lines = run_quick()
        print("\n".join([f"== {title} (quick) =="] + lines))
    else:
        from _harness import emit

        lines = run_full()
        emit("ext_surrogate", title, lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())
