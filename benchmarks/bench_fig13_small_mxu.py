"""Figure 13: MXU utilization with reduced datasets.

The counterpart of Figure 12: every model loses matrix-unit utilization
when fed the smaller dataset, ResNet-on-CIFAR10 most of all.
"""

from _harness import cached_run, emit, once

_PAIRS = (
    ("qanet-squad", "qanet-squad-half"),
    ("retinanet-coco", "retinanet-coco-half"),
    ("resnet-imagenet", "resnet-cifar10"),
)


def test_fig13_mxu_small_datasets(benchmark):
    once(benchmark, lambda: cached_run("resnet-cifar10", "v2"))

    lines = [
        f"{'workload':22s} {'v2 full':>8s} {'v2 small':>9s} {'v3 full':>8s} {'v3 small':>9s}"
    ]
    drops = {}
    for full_key, small_key in _PAIRS:
        row = {}
        for generation in ("v2", "v3"):
            row[f"{generation}-full"] = cached_run(full_key, generation).mxu_utilization
            row[f"{generation}-small"] = cached_run(small_key, generation).mxu_utilization
        drops[small_key] = row["v2-full"] - row["v2-small"]
        lines.append(
            f"{small_key:22s} {row['v2-full']:>8.1%} {row['v2-small']:>9.1%} "
            f"{row['v3-full']:>8.1%} {row['v3-small']:>9.1%}"
        )
        # Shape: reduced datasets reduce utilization on both generations.
        assert row["v2-small"] < row["v2-full"], small_key
        assert row["v3-small"] < row["v3-full"], small_key
    lines.append("paper: every model loses MXU utilization; ResNet changes most")
    emit("fig13", "Figure 13: MXU utilization with smaller datasets", lines)

    assert drops["resnet-cifar10"] == max(drops.values())
