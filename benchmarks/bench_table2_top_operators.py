"""Table II: the top-5 most time-consuming operators in the most
time-consuming phase, per workload and per detection algorithm, for host
and TPU, with appearance totals across configurations on both TPU
generations.

Headline checks from Section VI-B: ``fusion`` is the most frequent top
TPU operator overall, ``Reshape`` ranks high despite not being
algorithm-related, and the host side is dominated by the data-exchange
operators ``OutfeedDequeueTuple`` / ``TransferBufferToInfeedLocked``.
"""

from repro.core.analyzer.operators import appearance_totals, top_operators_of_longest_phase
from repro.runtime.events import DeviceKind

from _harness import FIGURE_ORDER, cached_profiled, emit, once

_ALGORITHMS = ("kmeans", "dbscan", "ols")


def _cell(analyzer, algorithm):
    if algorithm == "kmeans":
        result = analyzer.kmeans_phases(k=5)
    elif algorithm == "dbscan":
        result = analyzer.dbscan_phases(min_samples=30)
    else:
        result = analyzer.ols_phases(0.70)
    return top_operators_of_longest_phase(result.phases, k=5)


def test_table2_top_operators(benchmark):
    _, _, bench_analyzer = cached_profiled("bert-mrpc")
    once(benchmark, lambda: _cell(bench_analyzer, "ols"))

    lines = []
    cells = {"v2": [], "v3": []}
    for generation in ("v2", "v3"):
        lines.append(f"--- TPU{generation} ---")
        for key in FIGURE_ORDER:
            _, _, analyzer = cached_profiled(key, generation)
            for algorithm in _ALGORITHMS:
                cell = _cell(analyzer, algorithm)
                cells[generation].append(cell)
                tpu_ops = ", ".join(cell[DeviceKind.TPU].operators)
                host_ops = ", ".join(cell[DeviceKind.HOST].operators)
                lines.append(f"{key:18s} {algorithm:7s} TPU : {tpu_ops}")
                lines.append(f"{key:18s} {algorithm:7s} host: {host_ops}")

    for generation in ("v2", "v3"):
        totals = appearance_totals(cells[generation])
        lines.append(f"--- appearance totals, TPU{generation} (paper's right columns) ---")
        for device in (DeviceKind.HOST, DeviceKind.TPU):
            ranked = totals[device].most_common(10)
            lines.append(
                f"{device.value:5s}: "
                + ", ".join(f"{name}={count}" for name, count in ranked)
            )
    emit("table2", "Table II: top-5 operators in the most time-consuming phase", lines)

    # Headline shape checks on the v2 totals.
    totals_v2 = appearance_totals(cells["v2"])
    tpu_counts = totals_v2[DeviceKind.TPU]
    host_counts = totals_v2[DeviceKind.HOST]
    top_tpu = [name for name, _ in tpu_counts.most_common(5)]
    assert "fusion" in top_tpu[:2], top_tpu
    assert "Reshape" in tpu_counts
    top_host = [name for name, _ in host_counts.most_common(4)]
    assert "OutfeedDequeueTuple" in top_host, top_host
    assert "TransferBufferToInfeedLocked" in top_host, top_host

    # The algorithms agree: for each workload, k-means and DBSCAN share
    # most of their top TPU operators (the paper: "mostly identical").
    for key in FIGURE_ORDER:
        _, _, analyzer = cached_profiled(key, "v2")
        km = set(_cell(analyzer, "kmeans")[DeviceKind.TPU].operators)
        db = set(_cell(analyzer, "dbscan")[DeviceKind.TPU].operators)
        assert len(km & db) >= 3, (key, km, db)
