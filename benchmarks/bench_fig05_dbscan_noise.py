"""Figure 5: DBSCAN — noise ratio for min_samples 5..180 in steps of 25.

The paper finds 30-80 minimum samples optimal (elbow on the noise
curve), producing 3-13 clusters; noise grows with the required sample
count.
"""

from repro.core.analyzer.elbow import find_elbow

from _harness import FIGURE_ORDER, cached_profiled, emit, once

_SWEEP = range(5, 181, 25)
_BENCH_KEY = "bert-mrpc"


def test_fig05_dbscan_noise_series(benchmark):
    _, _, bench_analyzer = cached_profiled(_BENCH_KEY)
    once(benchmark, lambda: bench_analyzer.dbscan_sweep(_SWEEP))

    lines = [f"{'workload':18s} " + " ".join(f"ms={m:<3d}" for m in _SWEEP) + "  elbow  clusters@30"]
    elbow_values = {}
    for key in FIGURE_ORDER:
        _, _, analyzer = cached_profiled(key)
        sweep = analyzer.dbscan_sweep(_SWEEP)
        ms_values = sorted(sweep)
        ratios = [sweep[m] for m in ms_values]
        elbow_ms = ms_values[find_elbow([float(m) for m in ms_values], ratios)]
        elbow_values[key] = elbow_ms
        clusters = analyzer.dbscan_phases(min_samples=30).num_phases
        lines.append(
            f"{key:18s} "
            + " ".join(f"{r:6.2f}" for r in ratios)
            + f"  ms*={elbow_ms:<4d} {clusters}"
        )
        # Shape: noise ratio weakly increases with min_samples.
        assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:]))
    lines.append("paper: optimum at 30-80 minimum samples, yielding 3-13 clusters")
    emit("fig05", "Figure 5: DBSCAN noise ratio vs minimum samples", lines)

    in_range = sum(1 for ms in elbow_values.values() if 30 <= ms <= 105)
    assert in_range >= 6, elbow_values
