"""Table I: workload breakdown and specifications.

Regenerates the workload inventory — model, type, dataset, dataset size,
and default training parameters — and benchmarks estimator assembly.
"""

from repro import units
from repro.models.registry import PAPER_WORKLOADS, workload
from repro.workloads.runner import build_estimator
from repro.workloads.spec import WorkloadSpec

from _harness import emit, once


def test_table1_workload_breakdown(benchmark):
    def build_all():
        return [build_estimator(WorkloadSpec(key)) for key in PAPER_WORKLOADS]

    once(benchmark, build_all)

    lines = [
        f"{'Workload':12s} {'Type':22s} {'Dataset':10s} {'Size':>12s} "
        f"{'Batch':>6s} {'PaperSteps':>10s} {'SimSteps':>9s}"
    ]
    for key in PAPER_WORKLOADS:
        entry = workload(key)
        defaults = entry.model.defaults(entry.dataset)
        lines.append(
            f"{entry.model.name:12s} {entry.model.workload_type:22s} "
            f"{entry.dataset.name:10s} {units.format_bytes(entry.dataset.total_bytes):>12s} "
            f"{defaults.batch_size:>6d} {defaults.paper_train_steps:>10d} "
            f"{defaults.train_steps:>9d}"
        )
    emit("table1", "Table I: workload breakdown and specifications", lines)

    # Paper-exact anchor values.
    assert units.format_bytes(workload("bert-squad").dataset.total_bytes) == "422.27 MiB"
    assert workload("resnet-imagenet").model.defaults(
        workload("resnet-imagenet").dataset
    ).paper_train_steps == 112_590
