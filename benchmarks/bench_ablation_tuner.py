"""Ablation: hill climbing vs exhaustive parameter search.

TPUPoint-Optimizer hill-climbs one parameter at a time. The alternative
— exhaustively measuring a grid over the two dominant knobs — finds a
configuration at least as good, but needs several times as many trial
windows. The ablation quantifies the trade: the hill climb reaches a
near-optimal steady-state step time at a fraction of the exploration
cost.
"""

import numpy as np

from repro.workloads.runner import build_estimator
from repro.workloads.spec import WorkloadSpec

from _harness import cached_optimized, emit, once

_GRID_CALLS = (1, 2, 4, 8, 16, 32)
_GRID_PREFETCH = (0, 1, 2, 4)
_MEASURE_STEPS = 10


def _steady_step_time(config) -> float:
    """Mean step wall time for a config over a fresh measurement run."""
    estimator = build_estimator(
        WorkloadSpec("retinanet-coco", pipeline_config=config)
    )
    estimator.train_steps(5)  # warm the producer state
    session = estimator.session
    start = session.clock.now_us
    executed = estimator.train_steps(_MEASURE_STEPS)
    return (session.clock.now_us - start) / max(executed, 1)


def test_ablation_tuner_vs_exhaustive(benchmark):
    optimized = cached_optimized("retinanet-coco", "v2")
    assert optimized.tuning is not None
    tuned_config = optimized.tuning.best_config
    hill_trials = len(optimized.tuning.trials)

    once(benchmark, lambda: _steady_step_time(tuned_config))

    best_grid = None
    grid_trials = 0
    for calls in _GRID_CALLS:
        for prefetch in _GRID_PREFETCH:
            config = tuned_config.with_updates(
                num_parallel_calls=calls, prefetch_depth=prefetch, jitter=0.0
            )
            step_us = _steady_step_time(config)
            grid_trials += 1
            if best_grid is None or step_us < best_grid[0]:
                best_grid = (step_us, calls, prefetch)

    tuned_step_us = _steady_step_time(tuned_config.with_updates(jitter=0.0))
    gap = tuned_step_us / best_grid[0]
    lines = [
        f"hill-climb trials : {hill_trials}",
        f"exhaustive trials : {grid_trials}",
        f"hill-climb steady step : {tuned_step_us / 1e3:.2f} ms",
        f"exhaustive best step   : {best_grid[0] / 1e3:.2f} ms "
        f"(calls={best_grid[1]}, prefetch={best_grid[2]})",
        f"hill-climb within {gap:.3f}x of the exhaustive optimum",
    ]
    emit("ablation_tuner", "Ablation: hill climb vs exhaustive (retinanet-coco)", lines)

    # Near-optimal at materially lower exploration cost.
    assert gap < 1.10
    assert hill_trials < grid_trials
