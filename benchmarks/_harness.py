"""Shared infrastructure for the benchmark suite.

Every bench regenerates one of the paper's tables or figures. Runs are
deterministic, so completed workload runs and analyzers are memoized for
the whole pytest session; each bench then formats the same rows/series
the paper reports, prints them, and appends them to
``benchmarks/results/<bench>.txt`` so the numbers survive pytest's output
capture.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.analyzer import TPUPointAnalyzer
from repro.core.api import TPUPoint
from repro.core.optimizer import OptimizationResult
from repro.workloads.runner import WorkloadRun, build_estimator, run_workload
from repro.workloads.spec import WorkloadSpec

RESULTS_DIR = Path(__file__).parent / "results"

#: Workload display order used by the paper's figures.
FIGURE_ORDER = (
    "bert-mrpc",
    "bert-squad",
    "bert-cola",
    "bert-mnli",
    "dcgan-cifar10",
    "dcgan-mnist",
    "qanet-squad",
    "retinanet-coco",
    "resnet-imagenet",
)

_RUN_CACHE: dict[tuple[str, str], WorkloadRun] = {}
_PROFILED_CACHE: dict[tuple[str, str], tuple] = {}
_OPTIMIZED_CACHE: dict[tuple[str, str], OptimizationResult] = {}


def cached_run(key: str, generation: str = "v2") -> WorkloadRun:
    """A completed (unprofiled) workload run, memoized per session."""
    cache_key = (key, generation)
    if cache_key not in _RUN_CACHE:
        _RUN_CACHE[cache_key] = run_workload(WorkloadSpec(key, generation=generation))
    return _RUN_CACHE[cache_key]


def cached_profiled(key: str, generation: str = "v2"):
    """(estimator, summary, analyzer) for a profiled run, memoized."""
    cache_key = (key, generation)
    if cache_key not in _PROFILED_CACHE:
        estimator = build_estimator(WorkloadSpec(key, generation=generation))
        tpupoint = TPUPoint(estimator)
        tpupoint.Start(analyzer=True)
        summary = estimator.train()
        tpupoint.Stop()
        analyzer = TPUPointAnalyzer(tpupoint.records)
        _PROFILED_CACHE[cache_key] = (estimator, summary, analyzer)
    return _PROFILED_CACHE[cache_key]


def cached_optimized(key: str, generation: str = "v2") -> OptimizationResult:
    """An optimizer-controlled run, memoized per session."""
    cache_key = (key, generation)
    if cache_key not in _OPTIMIZED_CACHE:
        estimator = build_estimator(WorkloadSpec(key, generation=generation))
        _OPTIMIZED_CACHE[cache_key] = TPUPoint(estimator).optimize()
    return _OPTIMIZED_CACHE[cache_key]


def emit(name: str, title: str, lines: list[str]) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    block = [f"== {title} =="] + lines
    text = "\n".join(block)
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def once(benchmark, fn):
    """Run a callable exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
