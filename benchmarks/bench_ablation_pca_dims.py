"""Ablation: PCA target dimensionality.

The paper reduces step vectors to at most 100 dimensions before
clustering. This ablation sweeps the cap and shows that (a) the elbow
choice of k is stable across a wide range of dimensionalities, and
(b) the dominant-phase structure (top-3 coverage at k=5) is insensitive
to the cap — the reduction is a cost optimization, not a result driver.
"""

from repro.core.analyzer.analyzer import TPUPointAnalyzer

from _harness import cached_profiled, emit, once

_DIMS = (2, 5, 10, 50, 100)


def test_ablation_pca_dims(benchmark):
    estimator, _, base_analyzer = cached_profiled("bert-squad")
    records = base_analyzer.records
    once(benchmark, lambda: TPUPointAnalyzer(records, max_pca_dims=10).kmeans_phases(k=5))

    lines = [f"{'dims':>5s} {'k*':>4s} {'top-3 cov (k=5)':>16s} {'reduced dims':>13s}"]
    coverages = []
    for dims in _DIMS:
        analyzer = TPUPointAnalyzer(records, max_pca_dims=dims)
        chosen_k = analyzer.choose_k(range(1, 10))
        result = analyzer.kmeans_phases(k=5)
        top3 = result.coverage().top(3)
        coverages.append(top3)
        actual = analyzer.reduced_matrix().shape[1]
        lines.append(f"{dims:>5d} {chosen_k:>4d} {top3:>16.1%} {actual:>13d}")
        assert actual <= dims
    lines.append("paper caps at 100 dims; the phase structure is dim-insensitive")
    emit("ablation_pca_dims", "Ablation: PCA dimensionality (bert-squad)", lines)

    # Coverage varies by only a few points across a 50x dimensionality range.
    assert max(coverages) - min(coverages) < 0.10
